// Package storage implements VeriDB's page-structured verifiable storage
// layer (paper §4): relational tables stored as ⟨key, nKey, data⟩ records
// in write-read consistent memory, with one key chain per access-method
// column (Definitions 4.2 and 5.2), untrusted B-tree indexes for location
// lookup, and verified access methods (§5.2) whose results carry
// single-record presence/absence evidence.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"veridb/internal/govern"
	"veridb/internal/record"
	"veridb/internal/vmem"
)

// Errors surfaced by the storage layer.
var (
	ErrDuplicateKey = errors.New("storage: duplicate primary key")
	ErrNotFound     = errors.New("storage: no such row")
	ErrNoSuchTable  = errors.New("storage: no such table")
	ErrTableExists  = errors.New("storage: table already exists")
	// ErrVerifyFailed means an access method's ⟨key, nKey⟩ conditions did
	// not hold: the untrusted index returned a location whose record does
	// not prove the requested presence/absence (§5.2).
	ErrVerifyFailed = errors.New("storage: access-method verification failed")
)

// TableSpec describes a table to create.
type TableSpec struct {
	Name   string
	Schema *record.Schema
	// PrimaryKey is the primary-key column index; it always has a chain.
	PrimaryKey int
	// ChainColumns lists additional column indexes that get ⟨key, nKey⟩
	// chains (the columns usable as verified search/range keys, §5.3).
	ChainColumns []int
	// Shards is the hash-shard count; 0 falls back to the store default and
	// 1 (the overall default) reproduces the unsharded layout bit-for-bit.
	Shards int
	// Ephemeral marks statement-scoped working tables (e.g. spool spill
	// targets). They skip MVCC versioning entirely: no commit-clock
	// traffic, no version capture, and scans use the classic latch-holding
	// Scanner — correct because an ephemeral table is only ever touched by
	// the statement that created it.
	Ephemeral bool
}

// Store owns the verifiable storage for a set of tables over one
// write-read consistent memory.
type Store struct {
	mem *vmem.Memory

	mu            sync.RWMutex
	tables        map[string]*Table
	defaultShards int
	// version counts catalog and layout changes (table create/drop,
	// default-shard change); plan caches key their validity on it.
	version atomic.Uint64

	// clock issues commit timestamps and tracks the watermark/floor for
	// snapshot reads (see mvcc.go).
	clock *commitClock
	// maxVersions caps retained versions per row key (0: unlimited).
	maxVersions atomic.Int64

	gcMu   sync.Mutex
	gcStop chan struct{}
	gcWG   sync.WaitGroup

	// budget, when set, is charged for retired MVCC version images (they
	// live in trusted heap until GC) so version-chain growth is visible to
	// the process memory governor. Atomic pointer: SetBudget may race with
	// concurrent commits.
	budget atomic.Pointer[govern.Budget]
}

// CatalogVersion returns a counter that advances on every catalog or
// shard-layout change. A compiled plan is valid only while the version it
// was planned under is current.
func (s *Store) CatalogVersion() uint64 { return s.version.Load() }

// NewStore builds a store over mem.
func NewStore(mem *vmem.Memory) *Store {
	return &Store{mem: mem, tables: make(map[string]*Table), defaultShards: 1, clock: newCommitClock()}
}

// SetDefaultShards sets the shard count used when a TableSpec leaves Shards
// at zero (the TableShards configuration knob). n < 1 is treated as 1.
func (s *Store) SetDefaultShards(n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	s.defaultShards = n
	s.mu.Unlock()
	s.version.Add(1)
}

// Memory exposes the underlying write-read consistent memory (for
// verification control and stats).
func (s *Store) Memory() *vmem.Memory { return s.mem }

// CreateTable creates a table with its chain sentinels.
func (s *Store) CreateTable(spec TableSpec) (*Table, error) {
	if spec.Schema == nil || spec.Schema.Len() == 0 {
		return nil, fmt.Errorf("storage: table %q needs columns", spec.Name)
	}
	if spec.PrimaryKey < 0 || spec.PrimaryKey >= spec.Schema.Len() {
		return nil, fmt.Errorf("storage: table %q primary key column %d out of range", spec.Name, spec.PrimaryKey)
	}
	chainCols := []int{spec.PrimaryKey}
	seen := map[int]bool{spec.PrimaryKey: true}
	for _, c := range spec.ChainColumns {
		if c < 0 || c >= spec.Schema.Len() {
			return nil, fmt.Errorf("storage: table %q chain column %d out of range", spec.Name, c)
		}
		if seen[c] {
			continue
		}
		seen[c] = true
		chainCols = append(chainCols, c)
	}
	sort.Ints(chainCols[1:])

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[spec.Name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrTableExists, spec.Name)
	}
	shards := spec.Shards
	if shards == 0 {
		shards = s.defaultShards
	}
	if shards < 1 {
		return nil, fmt.Errorf("storage: table %q shard count %d must be ≥ 1", spec.Name, shards)
	}
	t, err := newTable(s, spec.Name, spec.Schema, chainCols, shards, spec.Ephemeral)
	if err != nil {
		return nil, err
	}
	if !spec.Ephemeral {
		// Stamp the creation as a commit so snapshots pinned before it will
		// refuse to scan the table (their catalog predates it).
		c := s.BeginCommit()
		t.born = c.Seq()
		c.Done()
	}
	s.tables[spec.Name] = t
	s.version.Add(1)
	return t, nil
}

// Register creates a table and returns it through the Engine seam (the
// §4.2 Register step: the table's chain sentinels join the verified set).
func (s *Store) Register(spec TableSpec) (Engine, error) {
	t, err := s.CreateTable(spec)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Table looks a table up by name.
func (s *Store) Table(name string) (Engine, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	return t, nil
}

// DropTable removes a table and frees the pages of every shard.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	t, ok := s.tables[name]
	if ok {
		delete(s.tables, name)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	s.version.Add(1)
	bud := s.budget.Load()
	for _, sh := range t.shards {
		sh.mu.Lock()
		if sh.mv != nil {
			// The dropped table's retired versions go with it; return their
			// budget charge so the governor doesn't count freed heap.
			for i := range sh.mv.hist {
				for _, vs := range sh.mv.hist[i] {
					for _, v := range vs {
						bud.Release(versionBytes(v.rec))
					}
				}
			}
		}
		for _, pid := range sh.pages {
			if err := s.mem.FreePage(pid); err != nil {
				sh.mu.Unlock()
				return err
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// TableNames lists tables in lexical order.
func (s *Store) TableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
