package storage

import (
	"fmt"

	"veridb/internal/index"
	"veridb/internal/record"
	"veridb/internal/vmem"
)

// Table is one relational table in the verifiable storage: a router over N
// hash shards. Every row is stored as a record carrying one ⟨key, nKey⟩
// link per chain column inside the shard its primary key hashes to; each
// shard additionally has one ⊥-anchored sentinel record per chain so that
// absence below the shard's minimum and in an empty shard is provable
// (Definition 4.2, Fig. 6).
//
// Point operations touch exactly one shard (routing is a deterministic
// in-enclave function of the primary key, so a key can live nowhere else
// and the owning shard's ⟨key, nKey⟩ interval is a complete absence
// proof). Scans open one verified scanner per shard and stitch the
// sub-chains in key order; see merge.go.
//
// With a single shard the layout, page-allocation order and verification
// traffic are bit-for-bit identical to the pre-sharding code (pinned by
// TestShardsOneGoldenChecksum).
type Table struct {
	store  *Store
	mem    *vmem.Memory
	name   string
	schema *record.Schema

	// chainCols[0] is the primary-key column; the rest are secondary chain
	// columns in ascending column order.
	chainCols []int

	shards []*shard

	// ephemeral tables (spool spill targets) skip MVCC entirely: no commit
	// clock traffic, no version capture, latch-holding scans.
	ephemeral bool
	// born is the commit seq the table was created at; snapshots pinned
	// below it must not scan the table (their catalog predates it).
	born uint64
}

func newTable(s *Store, name string, schema *record.Schema, chainCols []int, nShards int, ephemeral bool) (*Table, error) {
	if nShards < 1 {
		nShards = 1
	}
	t := &Table{
		store:     s,
		mem:       s.mem,
		name:      name,
		schema:    schema,
		chainCols: chainCols,
		shards:    make([]*shard, nShards),
		ephemeral: ephemeral,
	}
	for i := range t.shards {
		affinity := -1
		if nShards > 1 {
			// Map shard i onto RSWS partition i mod P so the shard latch and
			// the partition lock see the same traffic (§4.3). Single-shard
			// tables keep the plain allocation order, bit-for-bit.
			affinity = i % s.mem.Partitions()
		}
		sh, err := newShard(t, i, affinity)
		if err != nil {
			return nil, err
		}
		t.shards[i] = sh
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *record.Schema { return t.schema }

// PrimaryKeyColumn returns the primary-key column index.
func (t *Table) PrimaryKeyColumn() int { return t.chainCols[0] }

// ChainColumns returns the chain columns (primary first).
func (t *Table) ChainColumns() []int {
	return append([]int(nil), t.chainCols...)
}

// ChainFor returns the chain index serving column col, or -1.
func (t *Table) ChainFor(col int) int {
	for i, c := range t.chainCols {
		if c == col {
			return i
		}
	}
	return -1
}

// ShardCount returns the number of hash shards.
func (t *Table) ShardCount() int { return len(t.shards) }

// RowCount returns the number of data rows (sentinels excluded).
func (t *Table) RowCount() int {
	n := 0
	for _, sh := range t.shards {
		sh.mu.RLock()
		n += sh.rows
		sh.mu.RUnlock()
	}
	return n
}

// shardFor routes an encoded primary key to its owning shard. Routing is a
// pure function of the key, evaluated inside the enclave: the untrusted
// host cannot steer a key to a shard whose chain would not prove its
// absence.
func (t *Table) shardFor(pk record.Key) *shard {
	if len(t.shards) == 1 {
		return t.shards[0]
	}
	return t.shards[index.ShardOf(pk.Encode(), len(t.shards))]
}

// chainKey derives the chain-i key for a tuple: the plain primary key for
// chain 0, a (value, pk) composite for secondary chains. ok is false when
// the tuple does not participate (NULL in a secondary chain column).
func (t *Table) chainKey(i int, tup record.Tuple, pk record.Key) (record.Key, bool, error) {
	v := tup[t.chainCols[i]]
	if i == 0 {
		return pk, true, nil
	}
	if v.IsNull() {
		return record.Key{}, false, nil
	}
	k, err := record.CompositeKey(v, pk)
	if err != nil {
		return record.Key{}, false, err
	}
	return k, true, nil
}

// autoCommit runs a single-statement mutation under its own commit
// timestamp: snapshot readers see it atomically once it completes.
// Ephemeral tables skip the clock entirely (nil commit, no version
// capture).
func (t *Table) autoCommit(f func(c *Commit) error) error {
	if t.ephemeral {
		return f(nil)
	}
	c := t.store.BeginCommit()
	defer c.Done()
	return f(c)
}

// Insert adds a tuple to the shard its primary key routes to, maintaining
// every chain (§4.2 Insert). The write commits under its own timestamp.
func (t *Table) Insert(tup record.Tuple) error {
	return t.autoCommit(func(c *Commit) error { return t.insertCommit(tup, c) })
}

// InsertAt is Insert stamped with an explicit commit: all writes sharing
// the commit become visible to snapshot readers atomically at c.Done.
func (t *Table) InsertAt(tup record.Tuple, c *Commit) error {
	return t.insertCommit(tup, c)
}

func (t *Table) insertCommit(tup record.Tuple, c *Commit) error {
	if err := t.schema.Validate(tup); err != nil {
		return err
	}
	tup = t.schema.Coerce(tup)
	pk, err := record.KeyOf(tup[t.chainCols[0]])
	if err != nil {
		return fmt.Errorf("storage: table %q: %w", t.name, err)
	}
	return t.shardFor(pk).insert(tup, pk, c)
}

// Delete removes the row with the given primary-key value (§4.2 Delete:
// unlink from every chain, then drop the record; space reclamation is
// deferred to the verification scan).
func (t *Table) Delete(pkVal record.Value) error {
	return t.autoCommit(func(c *Commit) error { return t.deleteCommit(pkVal, c) })
}

// DeleteAt is Delete stamped with an explicit commit.
func (t *Table) DeleteAt(pkVal record.Value, c *Commit) error {
	return t.deleteCommit(pkVal, c)
}

func (t *Table) deleteCommit(pkVal record.Value, c *Commit) error {
	pk, err := record.KeyOf(pkVal)
	if err != nil {
		return err
	}
	return t.shardFor(pk).delete(pk, c)
}

// UpdateFunc atomically reads the row with the given primary key, applies
// mutate to a copy, and writes the result back, all under the owning
// shard's write latch — the read-modify-write primitive transactional
// workloads need (lost updates are otherwise possible between Get and
// Update). Chain-key columns must not change; use Update for key-changing
// writes.
func (t *Table) UpdateFunc(pkVal record.Value, mutate func(record.Tuple) (record.Tuple, error)) error {
	return t.autoCommit(func(c *Commit) error { return t.updateFuncCommit(pkVal, mutate, c) })
}

// UpdateFuncAt is UpdateFunc stamped with an explicit commit.
func (t *Table) UpdateFuncAt(pkVal record.Value, mutate func(record.Tuple) (record.Tuple, error), c *Commit) error {
	return t.updateFuncCommit(pkVal, mutate, c)
}

func (t *Table) updateFuncCommit(pkVal record.Value, mutate func(record.Tuple) (record.Tuple, error), c *Commit) error {
	pk, err := record.KeyOf(pkVal)
	if err != nil {
		return err
	}
	return t.shardFor(pk).updateFunc(pkVal, pk, mutate, c)
}

// Update replaces the row with the given primary key by newTup. When no
// chain key changes, the data field is rewritten in place (§4.2 Update:
// "there is no need to update the key chain"); otherwise the row is
// deleted and re-inserted — which re-routes it when the primary key now
// hashes to a different shard.
func (t *Table) Update(pkVal record.Value, newTup record.Tuple) error {
	return t.autoCommit(func(c *Commit) error { return t.updateCommit(pkVal, newTup, c) })
}

// UpdateAt is Update stamped with an explicit commit.
func (t *Table) UpdateAt(pkVal record.Value, newTup record.Tuple, c *Commit) error {
	return t.updateCommit(pkVal, newTup, c)
}

func (t *Table) updateCommit(pkVal record.Value, newTup record.Tuple, c *Commit) error {
	if err := t.schema.Validate(newTup); err != nil {
		return err
	}
	newTup = t.schema.Coerce(newTup)
	pk, err := record.KeyOf(pkVal)
	if err != nil {
		return err
	}
	reinsert, err := t.shardFor(pk).update(pkVal, pk, newTup, c)
	if err != nil {
		return err
	}
	if !reinsert {
		return nil
	}
	// Same commit: the delete and the re-insert are one version
	// transition, invisible as separate steps to any snapshot.
	if err := t.insertCommit(newTup, c); err != nil {
		return fmt.Errorf("storage: update of %v lost its row on re-insert: %w", pkVal, err)
	}
	return nil
}

// Get is the verified index search of §5.2: SELECT * WHERE pk = v. The
// probe routes to the single shard that could hold the key; the untrusted
// index supplies a candidate location and the record fetched from
// write-read consistent memory must satisfy key == v (present) or
// key < v < nKey (absent), otherwise ErrVerifyFailed is returned.
func (t *Table) Get(v record.Value) (record.Tuple, Evidence, error) {
	pk, err := record.KeyOf(v)
	if err != nil {
		return nil, Evidence{}, err
	}
	return t.shardFor(pk).searchChain(0, pk)
}

// SearchPK is the historical name of Get.
func (t *Table) SearchPK(v record.Value) (record.Tuple, Evidence, error) {
	return t.Get(v)
}

// snapCheck validates that snap may read this table at all.
func (t *Table) snapCheck(snap *Snapshot) error {
	if t.ephemeral {
		return fmt.Errorf("storage: ephemeral table %q cannot be read at a snapshot", t.name)
	}
	if snap.Seq() < t.born {
		return fmt.Errorf("storage: table %q was created at seq %d, after snapshot %d", t.name, t.born, snap.Seq())
	}
	return nil
}

// GetAt is Get evaluated against a pinned snapshot: the ⟨key, nKey⟩
// evidence record is the one visible at the snapshot seq, so presence and
// absence are proved for the committed state the snapshot pinned.
func (t *Table) GetAt(v record.Value, snap *Snapshot) (record.Tuple, Evidence, error) {
	if err := t.snapCheck(snap); err != nil {
		return nil, Evidence{}, err
	}
	pk, err := record.KeyOf(v)
	if err != nil {
		return nil, Evidence{}, err
	}
	return t.shardFor(pk).searchChainAt(0, pk, snap.Seq())
}

// NewScan opens a verified scan of the given chain over bounds. For
// chain 0 the bounds are primary keys; for secondary chains callers pass
// composite bounds (record.CompositeLow/High). On a sharded table the scan
// stitches every shard's sub-chain in key order.
//
// On a versioned table the scan runs against an implicit snapshot pinned
// at the current commit watermark and owned by the iterator (released at
// Close), so shard latches are never held across the scan's life. Only
// ephemeral tables use the latch-holding Scanner.
func (t *Table) NewScan(chain int, bounds ScanBounds) (Iterator, error) {
	if chain < 0 || chain >= len(t.chainCols) {
		return nil, fmt.Errorf("storage: table %q has no chain %d", t.name, chain)
	}
	if t.ephemeral {
		if len(t.shards) == 1 {
			return t.shards[0].newScan(chain, bounds)
		}
		return newMergeIterator(t, chain, func(sh *shard) (chainScanner, error) {
			return sh.newScan(chain, bounds)
		})
	}
	snap := t.store.OpenSnapshot()
	it, err := t.NewScanAt(chain, bounds, snap)
	if err != nil {
		snap.Close()
		return it, err
	}
	return &snapClosingIter{Iterator: it, snap: snap}, nil
}

// NewScanAt opens a verified scan of the given chain as of snap. The
// caller keeps ownership of snap (one snapshot can serve many scans).
func (t *Table) NewScanAt(chain int, bounds ScanBounds, snap *Snapshot) (Iterator, error) {
	if chain < 0 || chain >= len(t.chainCols) {
		return nil, fmt.Errorf("storage: table %q has no chain %d", t.name, chain)
	}
	if err := t.snapCheck(snap); err != nil {
		return nil, err
	}
	seq := snap.Seq()
	if len(t.shards) == 1 {
		return t.shards[0].newSnapScan(chain, bounds, seq)
	}
	return newMergeIterator(t, chain, func(sh *shard) (chainScanner, error) {
		return sh.newSnapScan(chain, bounds, seq)
	})
}

// RangeScan opens a verified scan over the chain serving column col,
// restricted to column values in [lo, hi] (nil bounds are open). For
// secondary chains the value bounds are translated to composite-key bounds
// so duplicate column values are all covered.
func (t *Table) RangeScan(col int, lo, hi *record.Value) (Iterator, error) {
	chain, bounds, err := t.rangeBounds(col, lo, hi)
	if err != nil {
		return nil, err
	}
	return t.NewScan(chain, bounds)
}

// RangeScanAt is RangeScan evaluated against a pinned snapshot.
func (t *Table) RangeScanAt(col int, lo, hi *record.Value, snap *Snapshot) (Iterator, error) {
	chain, bounds, err := t.rangeBounds(col, lo, hi)
	if err != nil {
		return nil, err
	}
	return t.NewScanAt(chain, bounds, snap)
}

// rangeBounds translates column-value bounds into chain-key scan bounds.
func (t *Table) rangeBounds(col int, lo, hi *record.Value) (int, ScanBounds, error) {
	chain := t.ChainFor(col)
	if chain < 0 {
		return 0, ScanBounds{}, fmt.Errorf("storage: table %q column %d has no access-method chain", t.name, col)
	}
	var bounds ScanBounds
	if lo != nil {
		var k record.Key
		var err error
		if chain == 0 {
			k, err = record.KeyOf(*lo)
		} else {
			k, err = record.CompositeLow(*lo)
		}
		if err != nil {
			return 0, ScanBounds{}, err
		}
		bounds.Start = &k
	}
	if hi != nil {
		var k record.Key
		var err error
		if chain == 0 {
			k, err = record.KeyOf(*hi)
		} else {
			// CompositeHigh is an exclusive bound in chain-key space: the
			// scan must emit keys strictly below it. NewScan treats End as
			// inclusive, which is harmless here because CompositeHigh itself
			// never equals a real composite key (it ends in the bumped
			// terminator 0x00 0x01, real keys embed 0x00 0x00).
			k, err = record.CompositeHigh(*hi)
		}
		if err != nil {
			return 0, ScanBounds{}, err
		}
		bounds.End = &k
	}
	return chain, bounds, nil
}

// ScanRange is the historical name of RangeScan.
func (t *Table) ScanRange(col int, lo, hi *record.Value) (Iterator, error) {
	return t.RangeScan(col, lo, hi)
}

// SeqScan opens a verified scan of the whole primary chain. On a sharded
// table with VerifyWorkers > 1 the per-shard sub-scans run on concurrent
// producers and are merged in key order (see merge.go); the output and its
// verification guarantees are identical to the sequential stitch. On a
// versioned table the scan owns an implicit snapshot (see NewScan).
func (t *Table) SeqScan() (Iterator, error) {
	if t.ephemeral {
		if len(t.shards) > 1 && t.mem.Config().VerifyWorkers > 1 {
			return newParallelMergeIterator(t, 0, func(sh *shard) (chainScanner, error) {
				return sh.newScan(0, ScanBounds{})
			})
		}
		return t.NewScan(0, ScanBounds{})
	}
	snap := t.store.OpenSnapshot()
	it, err := t.SeqScanAt(snap)
	if err != nil {
		snap.Close()
		return it, err
	}
	return &snapClosingIter{Iterator: it, snap: snap}, nil
}

// SeqScanAt is SeqScan evaluated against a pinned snapshot the caller
// owns. The parallel per-shard fan-out applies exactly as in SeqScan.
func (t *Table) SeqScanAt(snap *Snapshot) (Iterator, error) {
	if err := t.snapCheck(snap); err != nil {
		return nil, err
	}
	if len(t.shards) > 1 && t.mem.Config().VerifyWorkers > 1 {
		seq := snap.Seq()
		return newParallelMergeIterator(t, 0, func(sh *shard) (chainScanner, error) {
			return sh.newSnapScan(0, ScanBounds{}, seq)
		})
	}
	return t.NewScanAt(0, ScanBounds{}, snap)
}
