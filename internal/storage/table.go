package storage

import (
	"fmt"

	"veridb/internal/index"
	"veridb/internal/record"
	"veridb/internal/vmem"
)

// Table is one relational table in the verifiable storage: a router over N
// hash shards. Every row is stored as a record carrying one ⟨key, nKey⟩
// link per chain column inside the shard its primary key hashes to; each
// shard additionally has one ⊥-anchored sentinel record per chain so that
// absence below the shard's minimum and in an empty shard is provable
// (Definition 4.2, Fig. 6).
//
// Point operations touch exactly one shard (routing is a deterministic
// in-enclave function of the primary key, so a key can live nowhere else
// and the owning shard's ⟨key, nKey⟩ interval is a complete absence
// proof). Scans open one verified scanner per shard and stitch the
// sub-chains in key order; see merge.go.
//
// With a single shard the layout, page-allocation order and verification
// traffic are bit-for-bit identical to the pre-sharding code (pinned by
// TestShardsOneGoldenChecksum).
type Table struct {
	store  *Store
	mem    *vmem.Memory
	name   string
	schema *record.Schema

	// chainCols[0] is the primary-key column; the rest are secondary chain
	// columns in ascending column order.
	chainCols []int

	shards []*shard
}

func newTable(s *Store, name string, schema *record.Schema, chainCols []int, nShards int) (*Table, error) {
	if nShards < 1 {
		nShards = 1
	}
	t := &Table{
		store:     s,
		mem:       s.mem,
		name:      name,
		schema:    schema,
		chainCols: chainCols,
		shards:    make([]*shard, nShards),
	}
	for i := range t.shards {
		affinity := -1
		if nShards > 1 {
			// Map shard i onto RSWS partition i mod P so the shard latch and
			// the partition lock see the same traffic (§4.3). Single-shard
			// tables keep the plain allocation order, bit-for-bit.
			affinity = i % s.mem.Partitions()
		}
		sh, err := newShard(t, i, affinity)
		if err != nil {
			return nil, err
		}
		t.shards[i] = sh
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *record.Schema { return t.schema }

// PrimaryKeyColumn returns the primary-key column index.
func (t *Table) PrimaryKeyColumn() int { return t.chainCols[0] }

// ChainColumns returns the chain columns (primary first).
func (t *Table) ChainColumns() []int {
	return append([]int(nil), t.chainCols...)
}

// ChainFor returns the chain index serving column col, or -1.
func (t *Table) ChainFor(col int) int {
	for i, c := range t.chainCols {
		if c == col {
			return i
		}
	}
	return -1
}

// ShardCount returns the number of hash shards.
func (t *Table) ShardCount() int { return len(t.shards) }

// RowCount returns the number of data rows (sentinels excluded).
func (t *Table) RowCount() int {
	n := 0
	for _, sh := range t.shards {
		sh.mu.RLock()
		n += sh.rows
		sh.mu.RUnlock()
	}
	return n
}

// shardFor routes an encoded primary key to its owning shard. Routing is a
// pure function of the key, evaluated inside the enclave: the untrusted
// host cannot steer a key to a shard whose chain would not prove its
// absence.
func (t *Table) shardFor(pk record.Key) *shard {
	if len(t.shards) == 1 {
		return t.shards[0]
	}
	return t.shards[index.ShardOf(pk.Encode(), len(t.shards))]
}

// chainKey derives the chain-i key for a tuple: the plain primary key for
// chain 0, a (value, pk) composite for secondary chains. ok is false when
// the tuple does not participate (NULL in a secondary chain column).
func (t *Table) chainKey(i int, tup record.Tuple, pk record.Key) (record.Key, bool, error) {
	v := tup[t.chainCols[i]]
	if i == 0 {
		return pk, true, nil
	}
	if v.IsNull() {
		return record.Key{}, false, nil
	}
	k, err := record.CompositeKey(v, pk)
	if err != nil {
		return record.Key{}, false, err
	}
	return k, true, nil
}

// Insert adds a tuple to the shard its primary key routes to, maintaining
// every chain (§4.2 Insert).
func (t *Table) Insert(tup record.Tuple) error {
	if err := t.schema.Validate(tup); err != nil {
		return err
	}
	tup = t.schema.Coerce(tup)
	pk, err := record.KeyOf(tup[t.chainCols[0]])
	if err != nil {
		return fmt.Errorf("storage: table %q: %w", t.name, err)
	}
	return t.shardFor(pk).insert(tup, pk)
}

// Delete removes the row with the given primary-key value (§4.2 Delete:
// unlink from every chain, then drop the record; space reclamation is
// deferred to the verification scan).
func (t *Table) Delete(pkVal record.Value) error {
	pk, err := record.KeyOf(pkVal)
	if err != nil {
		return err
	}
	return t.shardFor(pk).delete(pk)
}

// UpdateFunc atomically reads the row with the given primary key, applies
// mutate to a copy, and writes the result back, all under the owning
// shard's write latch — the read-modify-write primitive transactional
// workloads need (lost updates are otherwise possible between Get and
// Update). Chain-key columns must not change; use Update for key-changing
// writes.
func (t *Table) UpdateFunc(pkVal record.Value, mutate func(record.Tuple) (record.Tuple, error)) error {
	pk, err := record.KeyOf(pkVal)
	if err != nil {
		return err
	}
	return t.shardFor(pk).updateFunc(pkVal, pk, mutate)
}

// Update replaces the row with the given primary key by newTup. When no
// chain key changes, the data field is rewritten in place (§4.2 Update:
// "there is no need to update the key chain"); otherwise the row is
// deleted and re-inserted — which re-routes it when the primary key now
// hashes to a different shard.
func (t *Table) Update(pkVal record.Value, newTup record.Tuple) error {
	if err := t.schema.Validate(newTup); err != nil {
		return err
	}
	newTup = t.schema.Coerce(newTup)
	pk, err := record.KeyOf(pkVal)
	if err != nil {
		return err
	}
	reinsert, err := t.shardFor(pk).update(pkVal, pk, newTup)
	if err != nil {
		return err
	}
	if !reinsert {
		return nil
	}
	if err := t.Insert(newTup); err != nil {
		return fmt.Errorf("storage: update of %v lost its row on re-insert: %w", pkVal, err)
	}
	return nil
}

// Get is the verified index search of §5.2: SELECT * WHERE pk = v. The
// probe routes to the single shard that could hold the key; the untrusted
// index supplies a candidate location and the record fetched from
// write-read consistent memory must satisfy key == v (present) or
// key < v < nKey (absent), otherwise ErrVerifyFailed is returned.
func (t *Table) Get(v record.Value) (record.Tuple, Evidence, error) {
	pk, err := record.KeyOf(v)
	if err != nil {
		return nil, Evidence{}, err
	}
	return t.shardFor(pk).searchChain(0, pk)
}

// SearchPK is the historical name of Get.
func (t *Table) SearchPK(v record.Value) (record.Tuple, Evidence, error) {
	return t.Get(v)
}

// NewScan opens a verified scan of the given chain over bounds. For
// chain 0 the bounds are primary keys; for secondary chains callers pass
// composite bounds (record.CompositeLow/High). On a sharded table the scan
// stitches every shard's sub-chain in key order.
func (t *Table) NewScan(chain int, bounds ScanBounds) (Iterator, error) {
	if chain < 0 || chain >= len(t.chainCols) {
		return nil, fmt.Errorf("storage: table %q has no chain %d", t.name, chain)
	}
	if len(t.shards) == 1 {
		return t.shards[0].newScan(chain, bounds)
	}
	return newMergeIterator(t, chain, bounds)
}

// RangeScan opens a verified scan over the chain serving column col,
// restricted to column values in [lo, hi] (nil bounds are open). For
// secondary chains the value bounds are translated to composite-key bounds
// so duplicate column values are all covered.
func (t *Table) RangeScan(col int, lo, hi *record.Value) (Iterator, error) {
	chain := t.ChainFor(col)
	if chain < 0 {
		return nil, fmt.Errorf("storage: table %q column %d has no access-method chain", t.name, col)
	}
	var bounds ScanBounds
	if lo != nil {
		var k record.Key
		var err error
		if chain == 0 {
			k, err = record.KeyOf(*lo)
		} else {
			k, err = record.CompositeLow(*lo)
		}
		if err != nil {
			return nil, err
		}
		bounds.Start = &k
	}
	if hi != nil {
		var k record.Key
		var err error
		if chain == 0 {
			k, err = record.KeyOf(*hi)
		} else {
			// CompositeHigh is an exclusive bound in chain-key space: the
			// scan must emit keys strictly below it. NewScan treats End as
			// inclusive, which is harmless here because CompositeHigh itself
			// never equals a real composite key (it ends in the bumped
			// terminator 0x00 0x01, real keys embed 0x00 0x00).
			k, err = record.CompositeHigh(*hi)
		}
		if err != nil {
			return nil, err
		}
		bounds.End = &k
	}
	return t.NewScan(chain, bounds)
}

// ScanRange is the historical name of RangeScan.
func (t *Table) ScanRange(col int, lo, hi *record.Value) (Iterator, error) {
	return t.RangeScan(col, lo, hi)
}

// SeqScan opens a verified scan of the whole primary chain. On a sharded
// table with VerifyWorkers > 1 the per-shard sub-scans run on concurrent
// producers and are merged in key order (see merge.go); the output and its
// verification guarantees are identical to the sequential stitch.
func (t *Table) SeqScan() (Iterator, error) {
	if len(t.shards) > 1 && t.mem.Config().VerifyWorkers > 1 {
		return newParallelMergeIterator(t, 0, ScanBounds{})
	}
	return t.NewScan(0, ScanBounds{})
}
