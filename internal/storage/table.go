package storage

import (
	"errors"
	"fmt"

	"veridb/internal/index"
	"veridb/internal/page"
	"veridb/internal/record"
	"veridb/internal/vmem"
)

// Table is one relational table in the verifiable storage. Every row is
// stored as a record carrying one ⟨key, nKey⟩ link per chain column; each
// chain additionally has a ⊥-anchored sentinel record so that absence below
// the minimum and in an empty table is provable (Definition 4.2, Fig. 6).
//
// The mutex serialises structural mutation (chain maintenance and the
// untrusted indexes); scanners hold it shared for their lifetime so the
// chain they verify is stable. The expensive verification work (PRF
// folding) happens inside vmem under its own per-partition RSWS locks.
type Table struct {
	store  *Store
	mem    *vmem.Memory
	name   string
	schema *record.Schema

	// chainCols[0] is the primary-key column; the rest are secondary chain
	// columns in ascending column order.
	chainCols []int

	mu       tableLock
	chains   []*index.BTree // chains[i] indexes chain i by encoded key
	pages    []uint64
	fill     uint64          // current insertion target page
	spacious map[uint64]bool // pages with known reclaimable or free space
	rows     int
}

func newTable(s *Store, name string, schema *record.Schema, chainCols []int) (*Table, error) {
	t := &Table{
		store:     s,
		mem:       s.mem,
		name:      name,
		schema:    schema,
		chainCols: chainCols,
		chains:    make([]*index.BTree, len(chainCols)),
		spacious:  make(map[uint64]bool),
	}
	for i := range t.chains {
		t.chains[i] = index.New()
	}
	// One sentinel record per chain: ⟨⊥, ⊤⟩ on its own chain, null links on
	// the others — two empty key chains, exactly as Fig. 6(a) initialises.
	for i := range t.chains {
		links := make([]record.ChainLink, len(chainCols))
		for j := range links {
			links[j] = record.ChainLink{Key: record.NullKey(), NKey: record.NullKey()}
		}
		links[i] = record.ChainLink{Key: record.Bottom(), NKey: record.Top()}
		loc, err := t.placeRecord(record.Encode(&record.Record{Links: links}))
		if err != nil {
			return nil, fmt.Errorf("storage: creating sentinel for %q chain %d: %w", name, i, err)
		}
		t.chains[i].Set(record.Bottom().Encode(), loc)
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *record.Schema { return t.schema }

// PrimaryKeyColumn returns the primary-key column index.
func (t *Table) PrimaryKeyColumn() int { return t.chainCols[0] }

// ChainColumns returns the chain columns (primary first).
func (t *Table) ChainColumns() []int {
	return append([]int(nil), t.chainCols...)
}

// ChainFor returns the chain index serving column col, or -1.
func (t *Table) ChainFor(col int) int {
	for i, c := range t.chainCols {
		if c == col {
			return i
		}
	}
	return -1
}

// RowCount returns the number of data rows (sentinels excluded).
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// chainKey derives the chain-i key for a tuple: the plain primary key for
// chain 0, a (value, pk) composite for secondary chains. ok is false when
// the tuple does not participate (NULL in a secondary chain column).
func (t *Table) chainKey(i int, tup record.Tuple, pk record.Key) (record.Key, bool, error) {
	v := tup[t.chainCols[i]]
	if i == 0 {
		return pk, true, nil
	}
	if v.IsNull() {
		return record.Key{}, false, nil
	}
	k, err := record.CompositeKey(v, pk)
	if err != nil {
		return record.Key{}, false, err
	}
	return k, true, nil
}

// placeRecord stores encoded bytes in a page with room, allocating pages as
// needed, and returns the location.
func (t *Table) placeRecord(enc []byte) (index.Loc, error) {
	try := func(pid uint64) (index.Loc, error) {
		slot, err := t.mem.Insert(pid, enc)
		if err != nil {
			return index.Loc{}, err
		}
		return index.Loc{Page: pid, Slot: slot}, nil
	}
	if t.fill != 0 {
		if loc, err := try(t.fill); err == nil {
			return loc, nil
		} else if !errors.Is(err, page.ErrPageFull) {
			return index.Loc{}, err
		}
	}
	// Retry a few pages known to have reclaimable space before growing.
	tried := 0
	for pid := range t.spacious {
		if pid == t.fill {
			delete(t.spacious, pid)
			continue
		}
		loc, err := try(pid)
		if err == nil {
			t.fill = pid
			delete(t.spacious, pid)
			return loc, nil
		}
		if !errors.Is(err, page.ErrPageFull) {
			return index.Loc{}, err
		}
		delete(t.spacious, pid)
		if tried++; tried >= 4 {
			break
		}
	}
	pid, err := t.mem.NewPage()
	if err != nil {
		return index.Loc{}, err
	}
	t.pages = append(t.pages, pid)
	t.fill = pid
	return try(pid)
}

// fetch reads and decodes the record at loc through the protected Get.
func (t *Table) fetch(loc index.Loc) (*record.Record, error) {
	raw, err := t.mem.Get(loc.Page, loc.Slot)
	if err != nil {
		return nil, err
	}
	rec, err := record.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: undecodable record at (%d,%d): %v", ErrVerifyFailed, loc.Page, loc.Slot, err)
	}
	return rec, nil
}

// rewrite stores a mutated record back at loc, relocating it (and fixing
// every chain index entry) when the grown record no longer fits its page
// (§4.2: an oversized update performs a delete followed by an insert,
// possibly on a different page).
func (t *Table) rewrite(loc index.Loc, rec *record.Record) (index.Loc, error) {
	enc := record.Encode(rec)
	err := t.mem.Update(loc.Page, loc.Slot, enc)
	if err == nil {
		return loc, nil
	}
	if !errors.Is(err, page.ErrPageFull) {
		return index.Loc{}, err
	}
	newLoc, err := t.placeRecord(enc)
	if err != nil {
		return index.Loc{}, err
	}
	if err := t.mem.Delete(loc.Page, loc.Slot); err != nil {
		return index.Loc{}, err
	}
	t.spacious[loc.Page] = true
	for i := range t.chains {
		l := rec.Links[i]
		if l.Key.IsNull() {
			continue
		}
		t.chains[i].Set(l.Key.Encode(), newLoc)
	}
	return newLoc, nil
}

// setPredNKey updates the chain-i predecessor of key so that its nKey
// becomes nk. The predecessor is located through the untrusted index and
// its identity verified against the chain (pred.key < key ≤ pred's old
// nKey would have held before the mutation this call is part of).
func (t *Table) setPredNKey(i int, key record.Key, nk record.Key) error {
	_, loc, ok := t.chains[i].SeekLT(key.Encode())
	if !ok {
		return fmt.Errorf("%w: chain %d has no predecessor for %v", ErrVerifyFailed, i, key)
	}
	rec, err := t.fetch(loc)
	if err != nil {
		return err
	}
	if len(rec.Links) != len(t.chains) || rec.Links[i].Key.IsNull() {
		return fmt.Errorf("%w: chain %d predecessor of %v does not participate", ErrVerifyFailed, i, key)
	}
	if rec.Links[i].Key.Compare(key) >= 0 {
		return fmt.Errorf("%w: chain %d predecessor %v not below %v", ErrVerifyFailed, i, rec.Links[i].Key, key)
	}
	rec.Links[i].NKey = nk
	_, err = t.rewrite(loc, rec)
	return err
}

// Insert adds a tuple, maintaining every chain (§4.2 Insert: "identifies
// the record whose primary key right precedes the current one, and updates
// its nKey").
func (t *Table) Insert(tup record.Tuple) error {
	if err := t.schema.Validate(tup); err != nil {
		return err
	}
	tup = t.schema.Coerce(tup)
	pk, err := record.KeyOf(tup[t.chainCols[0]])
	if err != nil {
		return fmt.Errorf("storage: table %q: %w", t.name, err)
	}

	t.mu.Lock()
	defer t.mu.Unlock()

	// One pass per chain: fetch the predecessor once, capture its current
	// nKey (the new record's successor) and relink it to the new key —
	// §4.2's "identifies the record whose primary key right precedes the
	// current one, and updates its nKey", paid as one verifiable read plus
	// one verifiable write per chain. Re-seeking per chain keeps this
	// correct when several chains share one predecessor record.
	keys := make([]record.Key, len(t.chains))
	present := make([]bool, len(t.chains))
	succs := make([]record.Key, len(t.chains))
	relinked := 0
	undo := func() {
		// Restore predecessors updated so far (failure of a later step).
		for i := 0; i < relinked; i++ {
			if present[i] {
				_ = t.setPredNKey(i, keys[i], succs[i])
			}
		}
	}
	for i := range t.chains {
		k, ok, err := t.chainKey(i, tup, pk)
		if err != nil {
			undo()
			return err
		}
		if !ok {
			relinked++
			continue
		}
		keys[i], present[i] = k, true
		pKey, pLoc, found := t.chains[i].SeekLE(k.Encode())
		if !found {
			undo()
			return fmt.Errorf("%w: chain %d missing ⊥ anchor", ErrVerifyFailed, i)
		}
		pRec, err := t.fetch(pLoc)
		if err != nil {
			undo()
			return err
		}
		if i == 0 && pRec.Links[0].Key.Equal(k) {
			undo()
			return fmt.Errorf("%w: %v in table %q", ErrDuplicateKey, tup[t.chainCols[0]], t.name)
		}
		if pRec.Links[i].Key.IsNull() {
			undo()
			return fmt.Errorf("%w: chain %d anchor at %x does not participate", ErrVerifyFailed, i, pKey)
		}
		succs[i] = pRec.Links[i].NKey
		pRec.Links[i].NKey = k
		if _, err := t.rewrite(pLoc, pRec); err != nil {
			undo()
			return err
		}
		relinked++
	}

	links := make([]record.ChainLink, len(t.chains))
	for i := range links {
		if present[i] {
			links[i] = record.ChainLink{Key: keys[i], NKey: succs[i]}
		} else {
			links[i] = record.ChainLink{Key: record.NullKey(), NKey: record.NullKey()}
		}
	}
	loc, err := t.placeRecord(record.Encode(&record.Record{Links: links, Data: tup}))
	if err != nil {
		undo()
		return err
	}
	for i := range t.chains {
		if present[i] {
			t.chains[i].Set(keys[i].Encode(), loc)
		}
	}
	t.rows++
	return nil
}

// Delete removes the row with the given primary-key value (§4.2 Delete:
// unlink from every chain, then drop the record; space reclamation is
// deferred to the verification scan).
func (t *Table) Delete(pkVal record.Value) error {
	pk, err := record.KeyOf(pkVal)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.deleteLocked(pk)
}

func (t *Table) deleteLocked(pk record.Key) error {
	loc, ok := t.chains[0].Get(pk.Encode())
	if !ok {
		return fmt.Errorf("%w: primary key %v in %q", ErrNotFound, pk, t.name)
	}
	rec, err := t.fetch(loc)
	if err != nil {
		return err
	}
	if !rec.Links[0].Key.Equal(pk) {
		return fmt.Errorf("%w: index pointed %v at record keyed %v", ErrVerifyFailed, pk, rec.Links[0].Key)
	}
	// Unlink from every chain the record participates in.
	for i := range t.chains {
		l := rec.Links[i]
		if l.Key.IsNull() {
			continue
		}
		if err := t.setPredNKey(i, l.Key, l.NKey); err != nil {
			return err
		}
	}
	// The predecessor rewrites may have relocated this record; re-resolve.
	loc, ok = t.chains[0].Get(pk.Encode())
	if !ok {
		return fmt.Errorf("%w: record vanished during delete", ErrVerifyFailed)
	}
	for i := range t.chains {
		if l := rec.Links[i]; !l.Key.IsNull() {
			t.chains[i].Delete(l.Key.Encode())
		}
	}
	if err := t.mem.Delete(loc.Page, loc.Slot); err != nil {
		return err
	}
	t.spacious[loc.Page] = true
	t.rows--
	return nil
}

// UpdateFunc atomically reads the row with the given primary key, applies
// mutate to a copy, and writes the result back, all under the table's
// write lock — the read-modify-write primitive transactional workloads
// need (lost updates are otherwise possible between SearchPK and Update).
// Chain-key columns must not change; use Update for key-changing writes.
func (t *Table) UpdateFunc(pkVal record.Value, mutate func(record.Tuple) (record.Tuple, error)) error {
	pk, err := record.KeyOf(pkVal)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	loc, ok := t.chains[0].Get(pk.Encode())
	if !ok {
		return fmt.Errorf("%w: primary key %v in %q", ErrNotFound, pkVal, t.name)
	}
	rec, err := t.fetch(loc)
	if err != nil {
		return err
	}
	newTup, err := mutate(rec.Data.Clone())
	if err != nil {
		return err
	}
	if err := t.schema.Validate(newTup); err != nil {
		return err
	}
	newTup = t.schema.Coerce(newTup)
	newPK, err := record.KeyOf(newTup[t.chainCols[0]])
	if err != nil {
		return err
	}
	if !newPK.Equal(pk) {
		return fmt.Errorf("storage: UpdateFunc on %q changed chain column %q",
			t.name, t.schema.Columns[t.chainCols[0]].Name)
	}
	for i := 1; i < len(t.chains); i++ {
		nk, ok, err := t.chainKey(i, newTup, pk)
		if err != nil {
			return err
		}
		old := rec.Links[i]
		same := (!ok && old.Key.IsNull()) || (ok && !old.Key.IsNull() && nk.Equal(old.Key))
		if !same {
			return fmt.Errorf("storage: UpdateFunc on %q changed chain column %q",
				t.name, t.schema.Columns[t.chainCols[i]].Name)
		}
	}
	rec.Data = newTup
	_, err = t.rewrite(loc, rec)
	return err
}

// Update replaces the row with the given primary key by newTup. When no
// chain key changes, the data field is rewritten in place (§4.2 Update:
// "there is no need to update the key chain"); otherwise the row is
// deleted and re-inserted.
func (t *Table) Update(pkVal record.Value, newTup record.Tuple) error {
	if err := t.schema.Validate(newTup); err != nil {
		return err
	}
	newTup = t.schema.Coerce(newTup)
	pk, err := record.KeyOf(pkVal)
	if err != nil {
		return err
	}

	t.mu.Lock()
	loc, ok := t.chains[0].Get(pk.Encode())
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: primary key %v in %q", ErrNotFound, pkVal, t.name)
	}
	rec, err := t.fetch(loc)
	if err != nil {
		t.mu.Unlock()
		return err
	}
	newPK, err := record.KeyOf(newTup[t.chainCols[0]])
	if err != nil {
		t.mu.Unlock()
		return err
	}
	sameKeys := newPK.Equal(pk)
	if sameKeys {
		for i := 1; i < len(t.chains) && sameKeys; i++ {
			nk, ok, err := t.chainKey(i, newTup, newPK)
			if err != nil {
				t.mu.Unlock()
				return err
			}
			old := rec.Links[i]
			switch {
			case !ok && old.Key.IsNull():
			case ok && !old.Key.IsNull() && nk.Equal(old.Key):
			default:
				sameKeys = false
			}
		}
	}
	if sameKeys {
		rec.Data = newTup
		_, err = t.rewrite(loc, rec)
		t.mu.Unlock()
		return err
	}
	// Chain keys changed: delete + insert (possibly on a different page).
	if err := t.deleteLocked(pk); err != nil {
		t.mu.Unlock()
		return err
	}
	t.mu.Unlock()
	if err := t.Insert(newTup); err != nil {
		return fmt.Errorf("storage: update of %v lost its row on re-insert: %w", pkVal, err)
	}
	return nil
}
