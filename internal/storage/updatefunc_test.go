package storage

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"veridb/internal/record"
	"veridb/internal/vmem"
)

func TestUpdateFuncBasic(t *testing.T) {
	s := newStore(t, vmem.Config{})
	tb, _ := s.CreateTable(itemsSpec())
	mustInsert(t, tb, record.Tuple{record.Int(1), record.Int(10), record.Float(5)})
	err := tb.UpdateFunc(record.Int(1), func(row record.Tuple) (record.Tuple, error) {
		row[2] = record.Float(row[2].F * 2)
		return row, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tup, _, _ := tb.SearchPK(record.Int(1))
	if tup[2].F != 10 {
		t.Fatalf("row %v", tup)
	}
	if err := s.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateFuncRejectsChainColumnChange(t *testing.T) {
	s := newStore(t, vmem.Config{})
	tb, _ := s.CreateTable(itemsSpec()) // chain on column 1 (count)
	mustInsert(t, tb, record.Tuple{record.Int(1), record.Int(10), record.Float(5)})
	err := tb.UpdateFunc(record.Int(1), func(row record.Tuple) (record.Tuple, error) {
		row[1] = record.Int(99) // chained column
		return row, nil
	})
	if err == nil || !strings.Contains(err.Error(), "chain column") {
		t.Fatalf("chain-column change accepted: %v", err)
	}
	// Primary key change rejected too.
	err = tb.UpdateFunc(record.Int(1), func(row record.Tuple) (record.Tuple, error) {
		row[0] = record.Int(2)
		return row, nil
	})
	if err == nil {
		t.Fatal("primary-key change accepted")
	}
	// Row untouched after rejections.
	tup, _, _ := tb.SearchPK(record.Int(1))
	if tup[1].I != 10 {
		t.Fatalf("row mutated by rejected update: %v", tup)
	}
}

func TestUpdateFuncMissingRowAndCallbackError(t *testing.T) {
	s := newStore(t, vmem.Config{})
	tb, _ := s.CreateTable(itemsSpec())
	err := tb.UpdateFunc(record.Int(404), func(row record.Tuple) (record.Tuple, error) {
		return row, nil
	})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	mustInsert(t, tb, record.Tuple{record.Int(1), record.Int(1), record.Float(1)})
	sentinel := errors.New("abort")
	err = tb.UpdateFunc(record.Int(1), func(record.Tuple) (record.Tuple, error) {
		return nil, sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("callback error lost: %v", err)
	}
}

// TestUpdateFuncAtomicUnderContention is the lost-update scenario the
// primitive exists for: N concurrent increments must all land.
func TestUpdateFuncAtomicUnderContention(t *testing.T) {
	s := newStore(t, vmem.Config{Partitions: 8})
	tb, _ := s.CreateTable(itemsSpec())
	mustInsert(t, tb, record.Tuple{record.Int(1), record.Int(5), record.Float(0)})
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := tb.UpdateFunc(record.Int(1), func(row record.Tuple) (record.Tuple, error) {
					row[2] = record.Float(row[2].F + 1)
					return row, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	tup, _, _ := tb.SearchPK(record.Int(1))
	if tup[2].F != workers*perWorker {
		t.Fatalf("lost updates: %v of %d", tup[2].F, workers*perWorker)
	}
	if err := s.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestScannerVisitedCountsBoundaries(t *testing.T) {
	s := newStore(t, vmem.Config{})
	tb, _ := s.CreateTable(itemsSpec())
	for i := 10; i <= 50; i += 10 {
		mustInsert(t, tb, record.Tuple{record.Int(int64(i)), record.Int(1), record.Float(0)})
	}
	// Range [25, 35] returns one row (30) but must visit the boundary
	// witnesses (20 as the ≤-start anchor; 30's nKey 40 proves the top).
	lo, hi := record.Int(25), record.Int(35)
	sc, err := tb.ScanRange(0, &lo, &hi)
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, sc)
	if len(rows) != 1 || rows[0][0].I != 30 {
		t.Fatalf("rows %v", rows)
	}
	if v := sc.Visited(); v < 2 {
		t.Fatalf("Visited = %d; boundary records not counted", v)
	}
}
