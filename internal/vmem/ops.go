package vmem

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"veridb/internal/page"
	"veridb/internal/sethash"
)

// metaSnapshot captures a page's metadata cells (header + line pointers)
// before a mutating operation. Folding the before/after difference into the
// read/write sets keeps metadata verification correct even when the slotted
// page compacts internally and relocates many records at once.
type metaSnapshot struct {
	hdr  []byte
	ptrs [][]byte // indexed by slot; nil beyond the directory
}

// snapshotMeta copies the page's metadata cells. vp.mu must be held.
func (vp *vPage) snapshotMeta() metaSnapshot {
	s := metaSnapshot{hdr: append([]byte(nil), vp.headerBytes()...)}
	n := vp.p.SlotCount()
	s.ptrs = make([][]byte, n)
	for i := 0; i < n; i++ {
		s.ptrs[i] = append([]byte(nil), vp.p.SlotPointerBytes(i)...)
	}
	return s
}

// ptrLive reports whether a line-pointer image references a record (offset
// zero marks dead and never-used slots).
func ptrLive(ptr []byte) bool {
	return len(ptr) >= 4 && binary.LittleEndian.Uint32(ptr) != 0
}

// foldMetaDiff records every metadata-cell transition between snap and the
// page's current state. A pointer cell is a member of the verified set
// while its slot is live; the header cell is always a member. Callers must
// hold vp.mu and part.mu and pass the accumulators chosen by epochSets.
func (m *Memory) foldMetaDiff(vp *vPage, snap metaSnapshot, rs, ws *sethash.Accumulator) {
	newHdr := vp.headerBytes()
	if !bytes.Equal(snap.hdr, newHdr) {
		hr := m.prf(HeaderAddr(vp.id), vp.hver, snap.hdr)
		rs.AddDigest(&hr)
		vp.hver++
		hw := m.prf(HeaderAddr(vp.id), vp.hver, newHdr)
		ws.AddDigest(&hw)
	}
	n := vp.p.SlotCount()
	if len(snap.ptrs) > n {
		n = len(snap.ptrs)
	}
	for s := 0; s < n; s++ {
		var oldPtr []byte
		if s < len(snap.ptrs) {
			oldPtr = snap.ptrs[s]
		}
		newPtr := vp.p.SlotPointerBytes(s) // nil beyond the directory
		oldLive, newLive := ptrLive(oldPtr), ptrLive(newPtr)
		if !oldLive && !newLive {
			continue
		}
		vp.ensureVers(s)
		switch {
		case oldLive && !newLive: // slot died: read the image out of the set
			mr := m.prf(MetaAddr(vp.id, s), vp.mver[s], oldPtr)
			rs.AddDigest(&mr)
		case !oldLive && newLive: // slot born: write the image into the set
			vp.mver[s]++
			mw := m.prf(MetaAddr(vp.id, s), vp.mver[s], newPtr)
			ws.AddDigest(&mw)
		case !bytes.Equal(oldPtr, newPtr): // relocated within the page
			mr := m.prf(MetaAddr(vp.id, s), vp.mver[s], oldPtr)
			rs.AddDigest(&mr)
			vp.mver[s]++
			mw := m.prf(MetaAddr(vp.id, s), vp.mver[s], newPtr)
			ws.AddDigest(&mw)
		}
	}
}

// foldMetaSolo records a page's metadata transitions against snap under the
// RSWS lock. It is used on failure paths of mutating operations: a
// page-level Insert or Update that returns ErrPageFull may nevertheless
// have compacted the page and relocated records, and that movement must
// enter the sets. vp.mu must be held.
func (m *Memory) foldMetaSolo(vp *vPage, snap metaSnapshot) {
	part := m.part(vp.id)
	part.mu.Lock()
	rs, ws := m.epochSets(part, vp)
	m.foldMetaDiff(vp, snap, rs, ws)
	part.mu.Unlock()
	vp.touched = true
}

// afterOp runs per-operation post-processing with all locks released:
// verifier pacing first, then the chaos hook's operation notification.
func (m *Memory) afterOp() {
	m.maybePace()
	if hp := m.hook.Load(); hp != nil {
		(*hp).OpDone(m.ops.Load())
	}
}

// applyWriteFault lets the installed hook corrupt the bytes that actually
// landed in untrusted memory while the accumulators keep the intended
// image (a dropped or torn DMA write). Must be called with vp.mu held,
// after intended has been stored in slot. Faults that cannot be stored in
// place (length mismatch) are ignored.
func (m *Memory) applyWriteFault(vp *vPage, slot int, old, intended []byte) {
	hp := m.hook.Load()
	if hp == nil {
		return
	}
	mutated := (*hp).MutateWrite(vp.id, slot, old, intended)
	if mutated == nil || len(mutated) != len(intended) || bytes.Equal(mutated, intended) {
		return
	}
	if cur, err := vp.p.Get(slot); err == nil && len(cur) == len(mutated) {
		copy(cur, mutated) // cur aliases the page buffer
	}
}

// Get reads the record in (pageID, slot) through the protected interface
// (Alg. 1 Read): the read is folded into h(RS) and a virtual write-back of
// the same data, at the next version, into h(WS). The returned slice is a
// private copy.
func (m *Memory) Get(pageID uint64, slot int) ([]byte, error) {
	vp, err := m.lookup(pageID)
	if err != nil {
		return nil, err
	}
	vp.mu.Lock()
	data, err := vp.p.Get(slot)
	if err != nil {
		vp.mu.Unlock()
		return nil, err
	}
	out := append([]byte(nil), data...)
	if m.cfg.Mode == ModeRSWS {
		m.ops.Add(1)
		part := m.part(pageID)
		part.mu.Lock()
		rs, ws := m.epochSets(part, vp)
		vp.ensureVers(slot)
		dr := m.prf(CellAddr(pageID, slot), vp.vers[slot], data)
		rs.AddDigest(&dr) // the read (Alg. 1 line 3)
		vp.vers[slot]++
		dw := m.prf(CellAddr(pageID, slot), vp.vers[slot], data)
		ws.AddDigest(&dw) // virtual write-back (Alg. 1 line 5)
		if m.cfg.VerifyMetadata {
			// The offset lookup is itself a verifiable read of the
			// line-pointer cell (§4.2: Get performs two verifiable reads).
			ptr := vp.p.SlotPointerBytes(slot)
			mr := m.prf(MetaAddr(pageID, slot), vp.mver[slot], ptr)
			rs.AddDigest(&mr)
			vp.mver[slot]++
			mw := m.prf(MetaAddr(pageID, slot), vp.mver[slot], ptr)
			ws.AddDigest(&mw)
		}
		part.mu.Unlock()
		vp.touched = true
	}
	vp.mu.Unlock()
	m.afterOp()
	return out, nil
}

// Insert stores rec in the page and returns its slot (§4.2 Insert, minus
// the key-chain maintenance, which the storage layer performs with further
// protected calls). The new cell enters h(WS); a freshly allocated cell has
// no read side.
func (m *Memory) Insert(pageID uint64, rec []byte) (int, error) {
	vp, err := m.lookup(pageID)
	if err != nil {
		return 0, err
	}
	vp.mu.Lock()
	track := m.cfg.Mode == ModeRSWS
	var snap metaSnapshot
	if track && m.cfg.VerifyMetadata {
		snap = vp.snapshotMeta()
	}
	slot, err := vp.p.Insert(rec)
	if err != nil {
		if track && m.cfg.VerifyMetadata {
			m.foldMetaSolo(vp, snap)
		}
		vp.mu.Unlock()
		return 0, err
	}
	if track {
		m.ops.Add(1)
		part := m.part(pageID)
		part.mu.Lock()
		rs, ws := m.epochSets(part, vp)
		vp.ensureVers(slot)
		// Versions are never reset on slot reuse: the multiset must not
		// contain duplicate (addr, ver, data) elements across lifetimes.
		vp.vers[slot]++
		dw := m.prf(CellAddr(pageID, slot), vp.vers[slot], rec)
		ws.AddDigest(&dw)
		if m.cfg.VerifyMetadata {
			m.foldMetaDiff(vp, snap, rs, ws)
		}
		part.mu.Unlock()
		vp.touched = true
	}
	m.applyWriteFault(vp, slot, nil, rec)
	vp.mu.Unlock()
	m.afterOp()
	return slot, nil
}

// Update overwrites the record in (pageID, slot) (Alg. 1 Write): the old
// image enters h(RS), the new image h(WS). If the new record does not fit
// the page, page.ErrPageFull is returned and the caller relocates (§4.2).
func (m *Memory) Update(pageID uint64, slot int, rec []byte) error {
	vp, err := m.lookup(pageID)
	if err != nil {
		return err
	}
	vp.mu.Lock()
	old, err := vp.p.Get(slot)
	if err != nil {
		vp.mu.Unlock()
		return err
	}
	track := m.cfg.Mode == ModeRSWS
	var oldCopy []byte
	var snap metaSnapshot
	if track {
		oldCopy = append([]byte(nil), old...)
		if m.cfg.VerifyMetadata {
			snap = vp.snapshotMeta()
		}
	}
	if err := vp.p.Update(slot, rec); err != nil {
		if track && m.cfg.VerifyMetadata {
			m.foldMetaSolo(vp, snap)
		}
		vp.mu.Unlock()
		return err
	}
	if track {
		m.ops.Add(1)
		part := m.part(pageID)
		part.mu.Lock()
		rs, ws := m.epochSets(part, vp)
		vp.ensureVers(slot)
		dr := m.prf(CellAddr(pageID, slot), vp.vers[slot], oldCopy)
		rs.AddDigest(&dr)
		vp.vers[slot]++
		dw := m.prf(CellAddr(pageID, slot), vp.vers[slot], rec)
		ws.AddDigest(&dw)
		if m.cfg.VerifyMetadata {
			m.foldMetaDiff(vp, snap, rs, ws)
		}
		part.mu.Unlock()
		vp.touched = true
	}
	m.applyWriteFault(vp, slot, oldCopy, rec)
	vp.mu.Unlock()
	m.afterOp()
	return nil
}

// Delete removes the record in (pageID, slot) (§4.2 Delete): the final
// image is read out into h(RS) and the cell leaves the verified set. Space
// reclamation is deferred to the verification scan unless EagerCompaction
// is configured (§4.3 "Compact page during verification").
func (m *Memory) Delete(pageID uint64, slot int) error {
	vp, err := m.lookup(pageID)
	if err != nil {
		return err
	}
	vp.mu.Lock()
	old, err := vp.p.Get(slot)
	if err != nil {
		vp.mu.Unlock()
		return err
	}
	track := m.cfg.Mode == ModeRSWS
	var oldCopy []byte
	var snap metaSnapshot
	if track {
		oldCopy = append([]byte(nil), old...)
		if m.cfg.VerifyMetadata {
			snap = vp.snapshotMeta()
		}
	}
	if err := vp.p.Delete(slot); err != nil {
		vp.mu.Unlock()
		return err
	}
	if m.cfg.EagerCompaction {
		// Ablation configuration: pay the record-relocation cost on every
		// delete instead of at scan time.
		vp.p.Compact()
	}
	if track {
		m.ops.Add(1)
		part := m.part(pageID)
		part.mu.Lock()
		rs, ws := m.epochSets(part, vp)
		vp.ensureVers(slot)
		dr := m.prf(CellAddr(pageID, slot), vp.vers[slot], oldCopy)
		rs.AddDigest(&dr)
		if m.cfg.VerifyMetadata {
			m.foldMetaDiff(vp, snap, rs, ws)
		}
		part.mu.Unlock()
		vp.touched = true
	}
	vp.mu.Unlock()
	m.afterOp()
	return nil
}

// Move atomically relocates a record to another page (§4.2 Move): the
// source cell is read out of the verified set and the image re-enters it at
// the destination, all under the protection of both page locks so the
// evidence record is never absent from the verified set mid-move.
func (m *Memory) Move(srcPage uint64, srcSlot int, dstPage uint64) (int, error) {
	if srcPage == dstPage {
		return srcSlot, nil
	}
	dstSlot, err := m.moveLocked(srcPage, srcSlot, dstPage)
	if err != nil {
		return 0, err
	}
	m.afterOp()
	return dstSlot, nil
}

// moveLocked performs Move's page-locked portion; afterOp must run with
// the locks released, so the caller handles it.
func (m *Memory) moveLocked(srcPage uint64, srcSlot int, dstPage uint64) (int, error) {
	src, err := m.lookup(srcPage)
	if err != nil {
		return 0, err
	}
	dst, err := m.lookup(dstPage)
	if err != nil {
		return 0, err
	}
	// Lock in ID order to avoid deadlock with concurrent moves.
	first, second := src, dst
	if first.id > second.id {
		first, second = second, first
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	second.mu.Lock()
	defer second.mu.Unlock()

	data, err := src.p.Get(srcSlot)
	if err != nil {
		return 0, err
	}
	rec := append([]byte(nil), data...)
	track := m.cfg.Mode == ModeRSWS
	var srcSnap, dstSnap metaSnapshot
	if track && m.cfg.VerifyMetadata {
		srcSnap = src.snapshotMeta()
		dstSnap = dst.snapshotMeta()
	}
	dstSlot, err := dst.p.Insert(rec)
	if err != nil {
		if track && m.cfg.VerifyMetadata {
			m.foldMetaSolo(dst, dstSnap)
		}
		return 0, err
	}
	if err := src.p.Delete(srcSlot); err != nil {
		// Roll back the insert; the move must be atomic.
		_ = dst.p.Delete(dstSlot)
		if track && m.cfg.VerifyMetadata {
			m.foldMetaSolo(dst, dstSnap)
		}
		return 0, err
	}
	if track {
		m.ops.Add(1)
		// Source partition: read-out.
		sp := m.part(srcPage)
		sp.mu.Lock()
		rs, ws := m.epochSets(sp, src)
		src.ensureVers(srcSlot)
		dr := m.prf(CellAddr(srcPage, srcSlot), src.vers[srcSlot], rec)
		rs.AddDigest(&dr)
		if m.cfg.VerifyMetadata {
			m.foldMetaDiff(src, srcSnap, rs, ws)
		}
		sp.mu.Unlock()
		src.touched = true
		// Destination partition: write-in.
		dp := m.part(dstPage)
		dp.mu.Lock()
		rs, ws = m.epochSets(dp, dst)
		dst.ensureVers(dstSlot)
		dst.vers[dstSlot]++
		dw := m.prf(CellAddr(dstPage, dstSlot), dst.vers[dstSlot], rec)
		ws.AddDigest(&dw)
		if m.cfg.VerifyMetadata {
			m.foldMetaDiff(dst, dstSnap, rs, ws)
		}
		dp.mu.Unlock()
		dst.touched = true
	}
	m.applyWriteFault(dst, dstSlot, nil, rec)
	return dstSlot, nil
}

// PageInfo describes a page's space situation; the storage layer uses it to
// choose insertion targets. Reading it is an untracked metadata access: the
// worst a lying header can cause is wasted space, not an integrity breach
// (§4.3).
type PageInfo struct {
	ContiguousFree int
	Reclaimable    int
	LiveRecords    int
	SlotCount      int
}

// Info returns space accounting for a page.
func (m *Memory) Info(pageID uint64) (PageInfo, error) {
	vp, err := m.lookup(pageID)
	if err != nil {
		return PageInfo{}, err
	}
	vp.mu.Lock()
	defer vp.mu.Unlock()
	return PageInfo{
		ContiguousFree: vp.p.ContiguousFree(),
		Reclaimable:    vp.p.ReclaimableBytes(),
		LiveRecords:    vp.p.LiveRecords(),
		SlotCount:      vp.p.SlotCount(),
	}, nil
}

// Slots invokes fn for every live record in the page without tracking the
// reads (for recovery, debugging and higher-layer scans of their own state;
// query-path reads must use Get). Records are copied.
func (m *Memory) Slots(pageID uint64, fn func(slot int, rec []byte) bool) error {
	vp, err := m.lookup(pageID)
	if err != nil {
		return err
	}
	vp.mu.Lock()
	defer vp.mu.Unlock()
	vp.p.Slots(func(slot int, rec []byte) bool {
		return fn(slot, append([]byte(nil), rec...))
	})
	return nil
}

// PageIDs returns a snapshot of all registered page IDs (unordered).
func (m *Memory) PageIDs() []uint64 {
	var ids []uint64
	for _, part := range m.parts {
		part.pagesMu.RLock()
		for id := range part.pages {
			ids = append(ids, id)
		}
		part.pagesMu.RUnlock()
	}
	return ids
}

// TamperRecord mutates a record's bytes in place, bypassing every protected
// interface — the adversary of §3.1 writing directly to host memory. The
// read/write sets are deliberately not updated; verification must detect
// the divergence.
func (m *Memory) TamperRecord(pageID uint64, slot int, data []byte) error {
	vp, err := m.lookup(pageID)
	if err != nil {
		return err
	}
	vp.mu.Lock()
	defer vp.mu.Unlock()
	old, err := vp.p.Get(slot)
	if err != nil {
		return err
	}
	if len(data) > len(old) {
		return fmt.Errorf("vmem: tamper payload %d bytes exceeds record %d", len(data), len(old))
	}
	copy(old, data) // old aliases the page buffer
	return nil
}

// PageImage is a raw copy of one page's untrusted state: the byte buffer
// plus the (equally untrusted) version ledgers. SnapshotPageRaw and
// RestorePageRaw move it in and out wholesale, bypassing every protected
// interface — the §3.1 adversary recording a page and replaying it later
// (stale-page rollback). The enclave-held accumulators and touched-page
// bookkeeping are deliberately untouched, so verification must flag the
// replay once the stale content meets a protected read or a page scan.
type PageImage struct {
	ID    uint64
	Buf   []byte
	Vers  []uint64
	MVers []uint64
	HVer  uint64
}

// SnapshotPageRaw copies a page's untrusted state (chaos testing only).
func (m *Memory) SnapshotPageRaw(pageID uint64) (*PageImage, error) {
	vp, err := m.lookup(pageID)
	if err != nil {
		return nil, err
	}
	vp.mu.Lock()
	defer vp.mu.Unlock()
	return &PageImage{
		ID:    pageID,
		Buf:   append([]byte(nil), vp.p.RawBuffer()...),
		Vers:  append([]uint64(nil), vp.vers...),
		MVers: append([]uint64(nil), vp.mver...),
		HVer:  vp.hver,
	}, nil
}

// RestorePageRaw overwrites a page's untrusted state with an earlier
// snapshot, simulating a stale-page replay attack (chaos testing only).
func (m *Memory) RestorePageRaw(img *PageImage) error {
	vp, err := m.lookup(img.ID)
	if err != nil {
		return err
	}
	vp.mu.Lock()
	defer vp.mu.Unlock()
	buf := vp.p.RawBuffer()
	if len(buf) != len(img.Buf) {
		return fmt.Errorf("vmem: page image is %d bytes, page is %d", len(img.Buf), len(buf))
	}
	copy(buf, img.Buf)
	vp.vers = append(vp.vers[:0], img.Vers...)
	vp.mver = append(vp.mver[:0], img.MVers...)
	vp.hver = img.HVer
	return nil
}

// TamperVersion corrupts the untrusted version ledger for a cell; the PRF
// covers versions, so this too must be detected.
func (m *Memory) TamperVersion(pageID uint64, slot int, ver uint64) error {
	vp, err := m.lookup(pageID)
	if err != nil {
		return err
	}
	vp.mu.Lock()
	defer vp.mu.Unlock()
	vp.ensureVers(slot)
	vp.vers[slot] = ver
	return nil
}

var _ = page.ErrPageFull // callers match on page-layer errors
