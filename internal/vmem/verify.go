package vmem

import (
	"fmt"
	"sync/atomic"

	"veridb/internal/sethash"
)

// scanPage performs the Alg. 2 inner loop on one page: every live cell is
// read into the current epoch's ReadSet and written into the next epoch's
// WriteSet. Only this page is locked while it happens (§4.1: "only the page
// that is currently being scanned is locked"). When deferred compaction is
// enabled, space reclamation rides along with the scan (§4.3).
//
// Untouched pages take the fast path of the touched-page optimisation
// (§4.3): their content digest from the previous scan is carried forward
// without re-hashing a single byte.
func (m *Memory) scanPage(part *partition, vp *vPage) {
	vp.mu.Lock()
	defer vp.mu.Unlock()
	// Epoch and scannedEpoch are only written by scanners, which scanMu
	// serialises, so the scanner may read them without the RSWS lock.
	if vp.scannedEpoch == part.epoch {
		return
	}
	if !m.cfg.FullScan && !vp.touched {
		part.mu.Lock()
		part.rsCur.AddDigest(&vp.resident)
		part.wsNext.AddDigest(&vp.resident)
		vp.scannedEpoch = part.epoch
		part.mu.Unlock()
		m.fastScans.Add(1)
		return
	}
	// Compaction as a side task of the scan: the page is locked and about
	// to be fully read anyway.
	if !m.cfg.NoScanCompaction && !m.cfg.EagerCompaction && vp.p.ReclaimableBytes() > 0 {
		if m.cfg.VerifyMetadata {
			snap := vp.snapshotMeta()
			vp.p.Compact()
			part.mu.Lock()
			// Not yet marked scanned, so the relocation transitions belong
			// to the current epoch.
			rs, ws := m.epochSets(part, vp)
			m.foldMetaDiff(vp, snap, rs, ws)
			part.mu.Unlock()
		} else {
			vp.p.Compact()
		}
	}
	// Hash every live cell. The page lock freezes the content, so the
	// (expensive) PRF evaluations can happen outside the RSWS lock; only
	// the final fold contends.
	var resident sethash.Digest
	vp.p.Slots(func(slot int, rec []byte) bool {
		vp.ensureVers(slot)
		d := m.prf(CellAddr(vp.id, slot), vp.vers[slot], rec)
		resident.XOR(&d)
		if m.cfg.VerifyMetadata {
			md := m.prf(MetaAddr(vp.id, slot), vp.mver[slot], vp.p.SlotPointerBytes(slot))
			resident.XOR(&md)
		}
		return true
	})
	if m.cfg.VerifyMetadata {
		hd := m.prf(HeaderAddr(vp.id), vp.hver, vp.headerBytes())
		resident.XOR(&hd)
	}
	part.mu.Lock()
	part.rsCur.AddDigest(&resident)  // Alg. 2 line 6
	part.wsNext.AddDigest(&resident) // Alg. 2 line 7
	vp.scannedEpoch = part.epoch
	part.mu.Unlock()
	vp.resident = resident
	vp.touched = false
	m.scans.Add(1)
}

// rotate closes the partition's epoch: the read and write sets must now
// hash the same multiset (Alg. 2 line 9); any divergence is evidence of
// tampering and raises a sticky alarm. The next-epoch accumulators become
// current.
func (m *Memory) rotate(part *partition) error {
	part.mu.Lock()
	ok := part.rsCur.Equal(&part.wsCur)
	rsSum, wsSum := part.rsCur.Sum(), part.wsCur.Sum()
	epoch := part.epoch
	part.rsCur = part.rsNext
	part.wsCur = part.wsNext
	part.rsNext.Reset()
	part.wsNext.Reset()
	part.epoch++
	part.scanning = false
	part.mu.Unlock()
	m.rotations.Add(1)
	if !ok {
		err := fmt.Errorf("%w: epoch %d, h(RS)=%v != h(WS)=%v",
			ErrTamperDetected, epoch, rsSum, wsSum)
		m.raiseAlarm(err)
		return err
	}
	return nil
}

// partitionPageIDs snapshots the partition's registered pages.
func (part *partition) pageIDSnapshot() []uint64 {
	part.pagesMu.RLock()
	ids := make([]uint64, 0, len(part.pages))
	for id := range part.pages {
		ids = append(ids, id)
	}
	part.pagesMu.RUnlock()
	return ids
}

func (part *partition) lookupLocal(id uint64) *vPage {
	part.pagesMu.RLock()
	vp := part.pages[id]
	part.pagesMu.RUnlock()
	return vp
}

// scanPartition runs one complete verification pass over a partition and
// rotates its epoch, returning the tamper alarm if the sets diverged.
func (m *Memory) scanPartition(part *partition) error {
	part.scanMu.Lock()
	defer part.scanMu.Unlock()
	part.mu.Lock()
	part.scanning = true
	part.mu.Unlock()
	for _, id := range part.pageIDSnapshot() {
		if vp := part.lookupLocal(id); vp != nil {
			m.scanPage(part, vp)
		}
	}
	return m.rotate(part)
}

// VerifyAll runs a full verification pass over every partition and returns
// the first tamper alarm encountered (all partitions are still scanned, so
// every epoch rotates). Callers running a background verifier should stop
// it first; otherwise VerifyAll waits for in-flight partition passes.
func (m *Memory) VerifyAll() error {
	var first error
	for _, part := range m.parts {
		if err := m.scanPartition(part); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// verifier is the non-quiescent background verification thread (§6.1: "the
// background verification thread always running, and perform a memory scan
// after x operations"). Each batch of opsPerScan protected operations
// triggers the scan of one page; completing a pass over a partition rotates
// its epoch.
type verifier struct {
	opsPerScan uint64
	opsSince   atomic.Uint64
	kick       chan struct{}
	stop       chan struct{}
	done       chan struct{}
}

// StartVerifier launches the background verifier. opsPerPageScan is the
// Fig. 10 x-axis: one page is scanned per that many protected operations.
// It panics if a verifier is already running.
func (m *Memory) StartVerifier(opsPerPageScan int) {
	if opsPerPageScan <= 0 {
		opsPerPageScan = 1
	}
	v := &verifier{
		opsPerScan: uint64(opsPerPageScan),
		kick:       make(chan struct{}, 4096),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	if !m.verifier.CompareAndSwap(nil, v) {
		panic("vmem: verifier already running")
	}
	go m.verifierLoop(v)
}

// StopVerifier signals the background verifier, waits for it to finish its
// current partition pass (so no epoch is left half-scanned), and returns.
func (m *Memory) StopVerifier() {
	v := m.verifier.Load()
	if v == nil {
		return
	}
	close(v.stop)
	<-v.done
	m.verifier.Store(nil)
}

// maybePace is called after every protected operation; it wakes the
// verifier once per opsPerScan operations.
func (m *Memory) maybePace() {
	v := m.verifier.Load()
	if v == nil {
		return
	}
	if v.opsSince.Add(1)%v.opsPerScan == 0 {
		select {
		case v.kick <- struct{}{}:
		default: // verifier is behind; dropping a kick only delays detection
		}
	}
}

// verifierLoop drives paced scanning: one page per kick, rotating a
// partition's epoch whenever its pass completes, then moving to the next
// partition. On stop it completes the in-flight pass so locks and epoch
// state end balanced.
func (m *Memory) verifierLoop(v *verifier) {
	defer close(v.done)
	pi := 0
	var pending []uint64
	inPass := false
	part := m.parts[0]

	startPass := func() {
		part = m.parts[pi]
		part.scanMu.Lock()
		part.mu.Lock()
		part.scanning = true
		part.mu.Unlock()
		pending = part.pageIDSnapshot()
		inPass = true
	}
	step := func() {
		if !inPass {
			startPass()
		}
		if len(pending) > 0 {
			id := pending[0]
			pending = pending[1:]
			if vp := part.lookupLocal(id); vp != nil {
				m.scanPage(part, vp)
			}
		}
		if len(pending) == 0 {
			_ = m.rotate(part) // alarm recorded; background pass keeps going
			part.scanMu.Unlock()
			inPass = false
			pi = (pi + 1) % len(m.parts)
		}
	}
	finishPass := func() {
		if !inPass {
			return
		}
		for _, id := range pending {
			if vp := part.lookupLocal(id); vp != nil {
				m.scanPage(part, vp)
			}
		}
		pending = nil
		_ = m.rotate(part)
		part.scanMu.Unlock()
		inPass = false
	}

	for {
		select {
		case <-v.stop:
			finishPass()
			return
		case <-v.kick:
			step()
		}
	}
}
