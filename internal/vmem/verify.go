package vmem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"veridb/internal/sethash"
)

// prfJob is one cell awaiting PRF evaluation during a page scan. Collecting
// jobs first and folding them second lets the expensive HMAC work run on
// any number of workers while the page lock freezes the content.
type prfJob struct {
	addr Addr
	ver  uint64
	data []byte // aliases the locked page buffer; read-only
}

// scanChunkMin is the smallest per-worker chunk worth a goroutine: below
// this many PRF evaluations (~16×2 µs) the handoff overhead dominates.
const scanChunkMin = 16

// collectScanJobs lists every live cell of the page as a PRF job, growing
// the version ledgers up front so workers only ever read them. Callers must
// hold vp.mu.
func (m *Memory) collectScanJobs(vp *vPage) []prfJob {
	jobs := make([]prfJob, 0, vp.p.LiveRecords()+1)
	vp.p.Slots(func(slot int, rec []byte) bool {
		vp.ensureVers(slot)
		jobs = append(jobs, prfJob{CellAddr(vp.id, slot), vp.vers[slot], rec})
		if m.cfg.VerifyMetadata {
			jobs = append(jobs, prfJob{MetaAddr(vp.id, slot), vp.mver[slot], vp.p.SlotPointerBytes(slot)})
		}
		return true
	})
	if m.cfg.VerifyMetadata {
		jobs = append(jobs, prfJob{HeaderAddr(vp.id), vp.hver, vp.headerBytes()})
	}
	return jobs
}

// hashJobs folds every job's PRF image into one digest. With more than one
// configured worker and enough jobs, the evaluations are chunked across
// goroutines into thread-local accumulators that XOR-combine at the end —
// bit-identical to the serial fold because XOR is associative and
// commutative. Each worker reuses one pooled HMAC state for its whole
// chunk (sethash.Hasher).
func (m *Memory) hashJobs(jobs []prfJob) sethash.Digest {
	workers := m.cfg.VerifyWorkers
	if max := (len(jobs) + scanChunkMin - 1) / scanChunkMin; workers > max {
		workers = max
	}
	var out sethash.Digest
	if workers <= 1 {
		h := m.key.NewHasher()
		var d sethash.Digest
		for _, j := range jobs {
			h.PRFvInto(uint64(j.addr), j.ver, j.data, &d)
			out.XOR(&d)
		}
		h.Close()
		m.prfEvals.Add(uint64(len(jobs)))
		return out
	}
	partials := make([]sethash.Digest, workers)
	chunk := (len(jobs) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(jobs))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(acc *sethash.Digest, jobs []prfJob) {
			defer wg.Done()
			h := m.key.NewHasher()
			defer h.Close()
			var d sethash.Digest
			for _, j := range jobs {
				h.PRFvInto(uint64(j.addr), j.ver, j.data, &d)
				acc.XOR(&d)
			}
		}(&partials[w], jobs[lo:hi])
	}
	wg.Wait()
	for i := range partials {
		out.XOR(&partials[i])
	}
	m.prfEvals.Add(uint64(len(jobs)))
	return out
}

// scanPage performs the Alg. 2 inner loop on one page: every live cell is
// read into the current epoch's ReadSet and written into the next epoch's
// WriteSet. Only this page is locked while it happens (§4.1: "only the page
// that is currently being scanned is locked"). When deferred compaction is
// enabled, space reclamation rides along with the scan (§4.3).
//
// Untouched pages take the fast path of the touched-page optimisation
// (§4.3): their content digest from the previous scan is carried forward
// without re-hashing a single byte.
//
// scanPage may run on any verification worker: the partition's scanMu is
// held by the pass that dispatched it, every page is dispatched at most
// once per pass, and the kick-off of each worker (goroutine start or task
// channel send) orders the pass's epoch rotation before the worker's
// unlocked reads of part.epoch.
func (m *Memory) scanPage(part *partition, vp *vPage) {
	vp.mu.Lock()
	defer vp.mu.Unlock()
	// Epoch and scannedEpoch are only written under part.mu by scanners of
	// this partition, which scanMu (held by the dispatching pass) and the
	// per-page dispatch ordering serialise, so reading them here without
	// the RSWS lock is safe.
	if vp.scannedEpoch == part.epoch {
		return
	}
	if !m.cfg.FullScan && !vp.touched {
		part.mu.Lock()
		part.rsCur.AddDigest(&vp.resident)
		part.wsNext.AddDigest(&vp.resident)
		vp.scannedEpoch = part.epoch
		part.mu.Unlock()
		m.fastScans.Add(1)
		return
	}
	// Compaction as a side task of the scan: the page is locked and about
	// to be fully read anyway.
	if !m.cfg.NoScanCompaction && !m.cfg.EagerCompaction && vp.p.ReclaimableBytes() > 0 {
		if m.cfg.VerifyMetadata {
			snap := vp.snapshotMeta()
			vp.p.Compact()
			part.mu.Lock()
			// Not yet marked scanned, so the relocation transitions belong
			// to the current epoch.
			rs, ws := m.epochSets(part, vp)
			m.foldMetaDiff(vp, snap, rs, ws)
			part.mu.Unlock()
		} else {
			vp.p.Compact()
		}
	}
	// Hash every live cell. The page lock freezes the content, so the
	// (expensive) PRF evaluations can happen outside the RSWS lock —
	// chunked across VerifyWorkers goroutines — and only the final fold
	// contends.
	resident := m.hashJobs(m.collectScanJobs(vp))
	part.mu.Lock()
	part.rsCur.AddDigest(&resident)  // Alg. 2 line 6
	part.wsNext.AddDigest(&resident) // Alg. 2 line 7
	vp.scannedEpoch = part.epoch
	part.mu.Unlock()
	vp.resident = resident
	vp.touched = false
	m.scans.Add(1)
}

// rotate closes the partition's epoch: the read and write sets must now
// hash the same multiset (Alg. 2 line 9); any divergence is evidence of
// tampering and raises a sticky alarm. The next-epoch accumulators become
// current.
func (m *Memory) rotate(part *partition) error {
	part.mu.Lock()
	ok := part.rsCur.Equal(&part.wsCur)
	rsSum, wsSum := part.rsCur.Sum(), part.wsCur.Sum()
	epoch := part.epoch
	part.rsCur = part.rsNext
	part.wsCur = part.wsNext
	part.rsNext.Reset()
	part.wsNext.Reset()
	part.epoch++
	part.scanning = false
	part.mu.Unlock()
	m.rotations.Add(1)
	if !ok {
		err := fmt.Errorf("%w: epoch %d, h(RS)=%v != h(WS)=%v",
			ErrTamperDetected, epoch, rsSum, wsSum)
		m.raiseAlarm(err)
		return err
	}
	return nil
}

// partitionPageIDs snapshots the partition's registered pages.
func (part *partition) pageIDSnapshot() []uint64 {
	part.pagesMu.RLock()
	ids := make([]uint64, 0, len(part.pages))
	for id := range part.pages {
		ids = append(ids, id)
	}
	part.pagesMu.RUnlock()
	return ids
}

func (part *partition) lookupLocal(id uint64) *vPage {
	part.pagesMu.RLock()
	vp := part.pages[id]
	part.pagesMu.RUnlock()
	return vp
}

// scanPartition runs one complete verification pass over a partition and
// rotates its epoch, returning the tamper alarm if the sets diverged.
func (m *Memory) scanPartition(part *partition) error {
	part.scanMu.Lock()
	defer part.scanMu.Unlock()
	part.mu.Lock()
	part.scanning = true
	part.mu.Unlock()
	for _, id := range part.pageIDSnapshot() {
		if vp := part.lookupLocal(id); vp != nil {
			m.scanPage(part, vp)
		}
	}
	return m.rotate(part)
}

// VerifyAll runs a full verification pass over every partition and returns
// the first (lowest-partition-index) tamper alarm encountered; all
// partitions are still scanned, so every epoch rotates. Partitions are
// scanned by up to VerifyWorkers goroutines at once — each partition has
// its own RSWS lock and scan lock (§4.3), so passes are independent.
// Callers running a background verifier should stop it first; otherwise
// VerifyAll waits for in-flight partition passes.
func (m *Memory) VerifyAll() error {
	workers := min(m.cfg.VerifyWorkers, len(m.parts))
	if workers <= 1 {
		var first error
		for _, part := range m.parts {
			if err := m.scanPartition(part); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, len(m.parts))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(m.parts) {
					return
				}
				errs[i] = m.scanPartition(m.parts[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ResidentChecksum XORs every page's last-scanned resident digest into one
// value. Identical memory contents scanned under the same PRF key must
// produce identical checksums regardless of VerifyWorkers — the
// observable that pins parallel scans bit-identical to serial ones
// (tests and the verify-scaling benchmark check it). Diagnostic only.
func (m *Memory) ResidentChecksum() sethash.Digest {
	var sum sethash.Digest
	for _, part := range m.parts {
		for _, id := range part.pageIDSnapshot() {
			if vp := part.lookupLocal(id); vp != nil {
				vp.mu.Lock()
				sum.XOR(&vp.resident)
				vp.mu.Unlock()
			}
		}
	}
	return sum
}

// scanTask is one background page scan handed to a verifier worker.
type scanTask struct {
	part *partition
	vp   *vPage
}

// verifier is the non-quiescent background verification machinery (§6.1:
// "the background verification thread always running, and perform a memory
// scan after x operations"). Each batch of opsPerScan protected operations
// triggers the scan of one page; the scans themselves execute on a pool of
// VerifyWorkers scanner goroutines fed from the kick-paced queue, and
// completing a pass over a partition rotates its epoch.
type verifier struct {
	opsPerScan uint64
	opsSince   atomic.Uint64
	kick       chan struct{}
	stop       chan struct{}
	done       chan struct{}

	tasks    chan scanTask
	inflight sync.WaitGroup // page scans of the current pass
	workerWG sync.WaitGroup
}

// StartVerifier launches the background verifier. opsPerPageScan is the
// Fig. 10 x-axis: one page is scanned per that many protected operations;
// the scans run on the memory's VerifyWorkers scanner goroutines. It
// returns ErrVerifierRunning if a verifier is already attached.
func (m *Memory) StartVerifier(opsPerPageScan int) error {
	if opsPerPageScan <= 0 {
		opsPerPageScan = 1
	}
	v := &verifier{
		opsPerScan: uint64(opsPerPageScan),
		kick:       make(chan struct{}, 4096),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		tasks:      make(chan scanTask),
	}
	if !m.verifier.CompareAndSwap(nil, v) {
		return ErrVerifierRunning
	}
	for w := 0; w < m.cfg.VerifyWorkers; w++ {
		v.workerWG.Add(1)
		go func() {
			defer v.workerWG.Done()
			for t := range v.tasks {
				m.scanPage(t.part, t.vp)
				v.inflight.Done()
			}
		}()
	}
	go m.verifierLoop(v)
	return nil
}

// StopVerifier signals the background verifier, waits for it to finish its
// current partition pass (so no epoch is left half-scanned), shuts the
// scanner workers down, and returns. It is idempotent and safe to call
// concurrently (quarantine entry and DB close may race): exactly one
// caller detaches and drains the verifier, the rest return immediately.
func (m *Memory) StopVerifier() {
	v := m.verifier.Swap(nil)
	if v == nil {
		return
	}
	close(v.stop)
	<-v.done
	close(v.tasks)
	v.workerWG.Wait()
}

// maybePace is called after every protected operation; it wakes the
// verifier once per opsPerScan operations.
func (m *Memory) maybePace() {
	v := m.verifier.Load()
	if v == nil {
		return
	}
	if v.opsSince.Add(1)%v.opsPerScan == 0 {
		select {
		case v.kick <- struct{}{}:
		default: // verifier is behind; dropping a kick only delays detection
		}
	}
}

// verifierLoop drives paced scanning: one page dispatched to the scanner
// pool per kick, rotating a partition's epoch whenever its pass completes
// (after all in-flight page scans of the pass have drained), then moving to
// the next partition. On stop it completes the in-flight pass so locks and
// epoch state end balanced.
func (m *Memory) verifierLoop(v *verifier) {
	defer close(v.done)
	pi := 0
	var pending []uint64
	inPass := false
	part := m.parts[0]

	startPass := func() {
		part = m.parts[pi]
		part.scanMu.Lock()
		part.mu.Lock()
		part.scanning = true
		part.mu.Unlock()
		pending = part.pageIDSnapshot()
		inPass = true
	}
	dispatch := func(id uint64) {
		if vp := part.lookupLocal(id); vp != nil {
			v.inflight.Add(1)
			v.tasks <- scanTask{part, vp}
		}
	}
	endPass := func() {
		v.inflight.Wait()  // every page of the pass scanned before rotation
		_ = m.rotate(part) // alarm recorded; background pass keeps going
		part.scanMu.Unlock()
		inPass = false
		pi = (pi + 1) % len(m.parts)
	}
	step := func() {
		if !inPass {
			startPass()
		}
		if len(pending) > 0 {
			id := pending[0]
			pending = pending[1:]
			dispatch(id)
		}
		if len(pending) == 0 {
			endPass()
		}
	}
	finishPass := func() {
		if !inPass {
			return
		}
		for _, id := range pending {
			dispatch(id)
		}
		pending = nil
		endPass()
	}

	for {
		select {
		case <-v.stop:
			finishPass()
			return
		case <-v.kick:
			step()
		}
	}
}
