package vmem

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"veridb/internal/enclave"
	"veridb/internal/page"
)

// loadRandomPages fills n pages with random records (some deleted again so
// pages carry dead slots and reclaimable space) and returns the page IDs.
func loadRandomPages(t testing.TB, m *Memory, n int, seed int64) []uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pids := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		pid, err := m.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		pids = append(pids, pid)
		var slots []int
		for j := 0; j < 20+rng.Intn(60); j++ {
			rec := make([]byte, 1+rng.Intn(48))
			rng.Read(rec)
			slot, err := m.Insert(pid, rec)
			if errors.Is(err, page.ErrPageFull) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			slots = append(slots, slot)
		}
		for _, s := range slots {
			if rng.Intn(5) == 0 {
				if err := m.Delete(pid, s); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return pids
}

// TestParallelScanResidentMatchesSerial is the bit-identical property the
// XOR-fold parallelism rests on: scanning the same memory contents with 1
// worker and with many workers must produce identical resident digests
// (and identical, alarm-free epoch rotations). Runs across the
// configuration space because metadata mode changes the job list.
func TestParallelScanResidentMatchesSerial(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{VerifyMetadata: true},
		{Partitions: 4},
		{Partitions: 4, VerifyMetadata: true},
		{PageSize: 1024},
	} {
		name := fmt.Sprintf("parts=%d,meta=%v,pagesize=%d", cfg.Partitions, cfg.VerifyMetadata, cfg.PageSize)
		t.Run(name, func(t *testing.T) {
			for trial := int64(0); trial < 3; trial++ {
				build := func(workers int) *Memory {
					c := cfg
					c.VerifyWorkers = workers
					m, err := New(enclave.NewForTest(42), c) // same seed → same PRF key
					if err != nil {
						t.Fatal(err)
					}
					loadRandomPages(t, m, 6, 100+trial)
					return m
				}
				serial := build(1)
				parallel := build(8)
				if err := serial.VerifyAll(); err != nil {
					t.Fatalf("serial pass: %v", err)
				}
				if err := parallel.VerifyAll(); err != nil {
					t.Fatalf("parallel pass: %v", err)
				}
				s, p := serial.ResidentChecksum(), parallel.ResidentChecksum()
				if !s.Equal(&p) {
					t.Fatalf("trial %d: parallel resident checksum %v != serial %v", trial, p, s)
				}
				if s.Zero() {
					t.Fatal("checksum trivially zero: pages were not scanned")
				}
			}
		})
	}
}

// TestTamperDetectedUnderConcurrentVerifyAll tampers a page while a
// multi-worker VerifyAll is mid-pass over a partitioned memory, with
// protected operations running concurrently on other pages. Whichever
// epoch the tampered read lands in, the sticky alarm must be raised within
// two further full passes.
func TestTamperDetectedUnderConcurrentVerifyAll(t *testing.T) {
	m, err := New(enclave.NewForTest(7), Config{Partitions: 8, FullScan: true, VerifyWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	pids := loadRandomPages(t, m, 24, 1)
	victim := pids[0]
	slot, err := m.Insert(victim, []byte("the-protected-balance"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyAll(); err != nil {
		t.Fatalf("pre-tamper pass: %v", err)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	// Concurrent mutators on non-victim pages: the pass must stay sound
	// under non-quiescent traffic.
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			<-start
			for {
				select {
				case <-stop:
					return
				default:
				}
				pid := pids[1+rng.Intn(len(pids)-1)]
				rec := make([]byte, 1+rng.Intn(32))
				rng.Read(rec)
				if s, err := m.Insert(pid, rec); err == nil {
					m.Get(pid, s)
				}
			}
		}(w)
	}
	// The tamperer strikes mid-pass.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		time.Sleep(100 * time.Microsecond)
		if err := m.TamperRecord(victim, slot, []byte("the-corrupted-balance")); err != nil {
			t.Error(err)
		}
	}()

	close(start)
	// Up to three passes: one racing the tamper, two guaranteed to follow
	// it (full-scan mode rescans every page, so the divergence cannot stay
	// hidden past the next complete epoch).
	var verr error
	for pass := 0; pass < 3 && verr == nil; pass++ {
		verr = m.VerifyAll()
	}
	close(stop)
	wg.Wait()
	if !errors.Is(verr, ErrTamperDetected) {
		t.Fatalf("concurrent verification missed tampering: %v", verr)
	}
	if err := m.Alarm(); !errors.Is(err, ErrTamperDetected) {
		t.Fatalf("alarm not sticky: %v", err)
	}
}

// TestTamperDetectedByMultiWorkerBackgroundVerifier is the background
// variant: the N-worker scanner pool, paced by ordinary traffic, must
// raise the alarm after a direct memory write.
func TestTamperDetectedByMultiWorkerBackgroundVerifier(t *testing.T) {
	m, err := New(enclave.NewForTest(9), Config{Partitions: 4, FullScan: true, VerifyWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	pids := loadRandomPages(t, m, 8, 2)
	slot, err := m.Insert(pids[0], []byte("watched-value"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	if err := m.TamperRecord(pids[0], slot, []byte("corrupt-value")); err != nil {
		t.Fatal(err)
	}
	if err := m.StartVerifier(1); err != nil {
		t.Fatal(err)
	}
	other, _ := m.NewPage()
	deadline := time.Now().Add(10 * time.Second)
	for m.Alarm() == nil && time.Now().Before(deadline) {
		m.Insert(other, []byte("traffic"))
		time.Sleep(50 * time.Microsecond)
	}
	m.StopVerifier()
	if err := m.Alarm(); !errors.Is(err, ErrTamperDetected) {
		t.Fatalf("multi-worker background verifier missed tampering: %v", err)
	}
}

// TestConcurrentVerifyAllAndBackgroundVerifier drives foreground VerifyAll
// passes, the background scanner pool, and mutating traffic all at once on
// a clean memory: no false alarm and no deadlock.
func TestConcurrentVerifyAllAndBackgroundVerifier(t *testing.T) {
	m, err := New(enclave.NewForTest(11), Config{Partitions: 4, VerifyWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	pids := loadRandomPages(t, m, 12, 3)
	if err := m.StartVerifier(20); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + w)))
			for i := 0; i < 300; i++ {
				pid := pids[rng.Intn(len(pids))]
				rec := make([]byte, 1+rng.Intn(32))
				rng.Read(rec)
				if s, err := m.Insert(pid, rec); err == nil {
					m.Get(pid, s)
					m.Delete(pid, s)
				}
			}
		}(w)
	}
	for i := 0; i < 3; i++ {
		if err := m.VerifyAll(); err != nil {
			t.Fatalf("foreground pass %d: false alarm %v", i, err)
		}
	}
	wg.Wait()
	m.StopVerifier()
	if err := m.VerifyAll(); err != nil {
		t.Fatalf("final pass: %v", err)
	}
}

// TestVerifyWorkersDefaultsToGOMAXPROCS pins the knob's default.
func TestVerifyWorkersDefault(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.VerifyWorkers < 1 {
		t.Fatalf("default VerifyWorkers = %d", cfg.VerifyWorkers)
	}
	cfg = Config{VerifyWorkers: 3}.withDefaults()
	if cfg.VerifyWorkers != 3 {
		t.Fatalf("explicit VerifyWorkers overridden to %d", cfg.VerifyWorkers)
	}
}
