// Package vmem implements VeriDB's write-read consistent memory (paper
// §4.1): a paged, in-memory store whose every protected read and write is
// folded into keyed ReadSet/WriteSet multiset hashes held by the (simulated)
// SGX enclave, with Concerto-style non-quiescent deferred verification.
//
// Data placement follows the paper's fundamental design decision (§3.3):
// the pages themselves live in untrusted memory (the ordinary Go heap),
// while the enclave holds only the per-partition accumulators and the PRF
// key. Any mutation that bypasses the protected interfaces — simulated by
// the Tamper* methods — makes the read set and write set of the enclosing
// epoch diverge, which the next verification scan detects.
//
// Every cell is a (addr, version, bytes) triple; versions increase on every
// protected access, making all multiset elements distinct (Blum et al.'s
// timestamped construction), so the XOR-homomorphic set hash is sound.
//
// Concurrency follows §4.3: the address space is split across a
// configurable number of RSWS partitions, each with its own accumulator
// lock; a verification scan locks only the page currently being scanned.
package vmem

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"veridb/internal/enclave"
	"veridb/internal/page"
	"veridb/internal/sethash"
)

// Mode selects how much verification work the memory performs.
type Mode int

const (
	// ModeRSWS maintains read/write set hashes for every protected access
	// (the VeriDB configuration).
	ModeRSWS Mode = iota
	// ModeBaseline performs the same data movement with no verification
	// bookkeeping at all (the paper's Baseline configuration, Fig. 9).
	ModeBaseline
)

// Config tunes the memory. The zero value is a single-partition RSWS memory
// with 8 KB pages, metadata excluded from verification, touched-page
// tracking and scan-time compaction on — the paper's recommended
// configuration after the §4.3 optimisations.
type Config struct {
	// Mode selects verification on (ModeRSWS) or off (ModeBaseline).
	Mode Mode
	// Partitions is the number of ReadSet/WriteSet pairs, each with its own
	// lock (§4.3 "Use multiple RSWSs to avoid lock contention"). Zero
	// means 1.
	Partitions int
	// PageSize in bytes; zero means page.DefaultSize (8 KB).
	PageSize int
	// VerifyMetadata also tracks page metadata cells (line pointers and
	// the header) in the read/write sets — the paper's "RSWS incl.
	// metadata" configuration. Off by default per the §4.3 optimisation.
	VerifyMetadata bool
	// FullScan disables touched-page tracking, forcing verification to
	// re-hash every page every epoch (ablation of the §4.3 optimisation).
	FullScan bool
	// EagerCompaction compacts a page on every delete instead of deferring
	// reclamation to the verification scan (ablation of §4.3).
	EagerCompaction bool
	// NoScanCompaction disables compaction during verification scans.
	NoScanCompaction bool
	// VerifyWorkers is the number of concurrent verification workers:
	// VerifyAll scans that many partitions at once, the background
	// verifier runs that many page scanners off its kick queue, and a
	// touched page's PRF evaluations are chunked across that many
	// goroutines. Partition passes are independent because each partition
	// has its own RSWS and scan locks (§4.3); intra-page parallelism is
	// exact because the XOR fold is associative and commutative, so the
	// combined digest is bit-identical to the serial scan's. Zero means
	// GOMAXPROCS; 1 recovers the fully serial verifier.
	VerifyWorkers int
}

func (c Config) withDefaults() Config {
	if c.Partitions <= 0 {
		c.Partitions = 1
	}
	if c.PageSize <= 0 {
		c.PageSize = page.DefaultSize
	}
	if c.VerifyWorkers <= 0 {
		c.VerifyWorkers = runtime.GOMAXPROCS(0)
	}
	return c
}

// ErrTamperDetected is wrapped by every verification-failure alarm.
var ErrTamperDetected = errors.New("vmem: read set and write set diverged (memory tampering detected)")

// ErrNoSuchPage is returned for operations on unregistered page IDs.
var ErrNoSuchPage = errors.New("vmem: no such page")

// ErrVerifierRunning is returned by StartVerifier when a background
// verifier is already attached to the memory.
var ErrVerifierRunning = errors.New("vmem: verifier already running")

// Addr identifies one protected cell: 48 bits of page ID, a metadata bit,
// and 15 bits of slot number.
type Addr uint64

const (
	metaBit   = 1 << 15
	slotMask  = metaBit - 1
	headerSlt = slotMask // reserved slot number for the page-header cell
)

// CellAddr is the address of the record cell (pageID, slot).
func CellAddr(pageID uint64, slot int) Addr {
	return Addr(pageID<<16 | uint64(slot)&slotMask)
}

// MetaAddr is the address of the line-pointer metadata cell for a slot.
func MetaAddr(pageID uint64, slot int) Addr {
	return Addr(pageID<<16 | metaBit | uint64(slot)&slotMask)
}

// HeaderAddr is the address of the page-header metadata cell.
func HeaderAddr(pageID uint64) Addr {
	return Addr(pageID<<16 | metaBit | headerSlt)
}

// PageID extracts the page component of an address.
func (a Addr) PageID() uint64 { return uint64(a) >> 16 }

// Slot extracts the slot component of an address.
func (a Addr) Slot() int { return int(uint64(a) & slotMask) }

// IsMeta reports whether the address names a metadata cell.
func (a Addr) IsMeta() bool { return uint64(a)&metaBit != 0 }

func (a Addr) String() string {
	kind := "cell"
	if a.IsMeta() {
		kind = "meta"
	}
	return fmt.Sprintf("%s(%d,%d)", kind, a.PageID(), a.Slot())
}

// vPage is one protected page: the untrusted slotted byte page plus the
// verification ledger (per-cell versions) and scan bookkeeping.
type vPage struct {
	id uint64

	mu   sync.Mutex
	p    *page.Page
	vers []uint64 // per-slot data-cell versions; index == slot
	mver []uint64 // per-slot line-pointer cell versions
	hver uint64   // header cell version

	scannedEpoch uint64         // partition epoch this page was last scanned in
	touched      bool           // any protected access since the last scan
	resident     sethash.Digest // XOR of live-cell PRFs as of the last scan
}

// ensureVers grows the version ledgers to cover slot.
func (vp *vPage) ensureVers(slot int) {
	for len(vp.vers) <= slot {
		vp.vers = append(vp.vers, 0)
		vp.mver = append(vp.mver, 0)
	}
}

// partition is one RSWS: a pair of epoch accumulators plus the next-epoch
// pair that non-quiescent verification builds while scanning (Alg. 2).
type partition struct {
	mu       sync.Mutex // the RSWS lock (§4.3)
	rsCur    sethash.Accumulator
	wsCur    sethash.Accumulator
	rsNext   sethash.Accumulator
	wsNext   sethash.Accumulator
	epoch    uint64
	scanning bool

	scanMu sync.Mutex // serialises scanners of this partition

	pagesMu sync.RWMutex
	pages   map[uint64]*vPage
}

// Stats is a snapshot of the memory's counters.
type Stats struct {
	Ops        uint64 // protected operations performed
	PRFEvals   uint64 // keyed PRF evaluations (the dominant overhead, §6.1)
	PagesAlive uint64
	Scans      uint64 // page scans performed by verification
	FastScans  uint64 // untouched pages carried forward without re-hashing
	Rotations  uint64 // completed epoch verifications
	Alarms     uint64
}

// Hook interposes on the untrusted-memory side of protected operations.
// It is the chaos-testing seam: the injector in internal/chaos implements
// it to model an adversary (or failing hardware) sitting between the
// enclave's bookkeeping and the bytes that actually land in host memory.
//
// MutateWrite is called under the page lock on every successful protected
// write (Insert, Update, Move write-in) with the image the accumulators
// folded; the returned slice is what actually lands in untrusted memory.
// Returning intended unchanged (or a slice of a different length, which
// cannot be stored in place) applies no fault. old is the previous cell
// image (nil for fresh inserts).
//
// OpDone is called after every protected operation completes, with all
// locks released, carrying the running protected-op count. The hook may
// invoke the memory's Tamper*/SnapshotPageRaw/RestorePageRaw primitives
// from OpDone, but must not issue protected operations (Get/Insert/...)
// without guarding against re-entry, since those call OpDone again.
type Hook interface {
	MutateWrite(pageID uint64, slot int, old, intended []byte) []byte
	OpDone(ops uint64)
}

// Memory is the write-read consistent memory.
type Memory struct {
	cfg   Config
	enc   *enclave.Enclave
	key   *sethash.Key
	parts []*partition

	nextPage atomic.Uint64

	ops       atomic.Uint64
	prfEvals  atomic.Uint64
	pageCount atomic.Uint64
	scans     atomic.Uint64
	fastScans atomic.Uint64
	rotations atomic.Uint64
	alarms    atomic.Uint64
	alarm     atomic.Pointer[alarmBox]

	hook     atomic.Pointer[Hook]
	verifier atomic.Pointer[verifier]
}

type alarmBox struct{ err error }

// New builds a memory backed by the given enclave, reserving the enclave
// EPC needed for the per-partition accumulator state.
func New(enc *enclave.Enclave, cfg Config) (*Memory, error) {
	cfg = cfg.withDefaults()
	m := &Memory{cfg: cfg, enc: enc, key: enc.PRFKey()}
	// Each partition keeps 4 accumulators (64 B each) plus epoch/flags in
	// sealed memory; reserve that from the EPC budget.
	if err := enc.ReserveEPC(int64(cfg.Partitions) * 512); err != nil {
		return nil, fmt.Errorf("vmem: reserving RSWS state: %w", err)
	}
	m.parts = make([]*partition, cfg.Partitions)
	for i := range m.parts {
		m.parts[i] = &partition{epoch: 1, pages: make(map[uint64]*vPage)}
	}
	return m, nil
}

// Config returns the effective configuration.
func (m *Memory) Config() Config { return m.cfg }

// Partitions returns the number of RSWS partitions.
func (m *Memory) Partitions() int { return len(m.parts) }

func (m *Memory) part(pageID uint64) *partition {
	return m.parts[pageID%uint64(len(m.parts))]
}

func (m *Memory) lookup(pageID uint64) (*vPage, error) {
	p := m.part(pageID)
	p.pagesMu.RLock()
	vp := p.pages[pageID]
	p.pagesMu.RUnlock()
	if vp == nil {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchPage, pageID)
	}
	return vp, nil
}

// NewPage registers a fresh empty page and returns its ID. Registration is
// the Register(page) interface of §4.2: from here on the page's cells are
// covered by the verification process. The enclave tracks one byte of
// touched-page bookkeeping per page (paper budgets one bit; we account
// conservatively).
func (m *Memory) NewPage() (uint64, error) {
	return m.NewPageIn(-1)
}

// NewPageIn is NewPage with a partition-affinity hint: when part is a valid
// partition index the returned page is guaranteed to map onto that RSWS
// partition (pageID mod partitions). Sharded tables use this to align a
// shard's pages with one partition so shard latches and RSWS locks contend
// on the same subset of cores. part < 0 means no preference, in which case
// the allocation is identical to NewPage. Skipped IDs are never registered;
// the ID space is sparse by design (48-bit page field in Addr).
func (m *Memory) NewPageIn(affinity int) (uint64, error) {
	id := m.nextPage.Add(1) // IDs start at 1
	if affinity >= 0 {
		want := uint64(affinity % len(m.parts))
		for id%uint64(len(m.parts)) != want {
			id = m.nextPage.Add(1)
		}
	}
	if err := m.enc.ReserveEPC(1); err != nil {
		return 0, err
	}
	vp := &vPage{id: id, p: page.New(m.cfg.PageSize)}
	part := m.part(id)

	part.mu.Lock()
	if part.scanning {
		// The scanner's snapshot predates this page; attribute it to the
		// next epoch so its (so far empty) ledger stays balanced.
		vp.scannedEpoch = part.epoch
	}
	if m.cfg.Mode == ModeRSWS && m.cfg.VerifyMetadata {
		// The header cell joins the verified set at registration (§4.2
		// Register "updates h(WS) based on the initial data in the page").
		_, ws := m.epochSets(part, vp)
		hw := m.prf(HeaderAddr(id), vp.hver, vp.headerBytes())
		ws.AddDigest(&hw)
		vp.touched = true
	}
	part.mu.Unlock()

	part.pagesMu.Lock()
	part.pages[id] = vp
	part.pagesMu.Unlock()
	m.pageCount.Add(1)
	return id, nil
}

// FreePage removes a page from the verified set. All live cells are folded
// into the read set (a final read-out), so the epoch stays balanced.
func (m *Memory) FreePage(pageID uint64) error {
	vp, err := m.lookup(pageID)
	if err != nil {
		return err
	}
	part := m.part(pageID)
	vp.mu.Lock()
	if m.cfg.Mode == ModeRSWS {
		part.mu.Lock()
		rs, _ := m.epochSets(part, vp)
		vp.p.Slots(func(slot int, rec []byte) bool {
			vp.ensureVers(slot)
			d := m.prf(CellAddr(pageID, slot), vp.vers[slot], rec)
			rs.AddDigest(&d)
			if m.cfg.VerifyMetadata {
				md := m.prf(MetaAddr(pageID, slot), vp.mver[slot], vp.p.SlotPointerBytes(slot))
				rs.AddDigest(&md)
			}
			return true
		})
		if m.cfg.VerifyMetadata {
			hd := m.prf(HeaderAddr(pageID), vp.hver, vp.headerBytes())
			rs.AddDigest(&hd)
		}
		part.mu.Unlock()
		vp.touched = true
	}
	vp.mu.Unlock()

	part.pagesMu.Lock()
	delete(part.pages, pageID)
	part.pagesMu.Unlock()
	m.pageCount.Add(^uint64(0))
	m.enc.ReleaseEPC(1)
	return nil
}

// headerBytes returns the tracked portion of the page header. Must be
// called with vp.mu held.
func (vp *vPage) headerBytes() []byte {
	return vp.p.RawBuffer()[:page.HeaderSize]
}

// prf evaluates the keyed PRF and counts the evaluation. Callers must hold
// the relevant partition's RSWS lock: the paper performs set updates inside
// dedicated enclave procedures guarded by the RSWS lock, and the resulting
// contention is exactly what Fig. 13 measures.
func (m *Memory) prf(addr Addr, ver uint64, data []byte) sethash.Digest {
	m.prfEvals.Add(1)
	return m.key.PRFv(uint64(addr), ver, data)
}

// epochSets picks the accumulator pair an operation on vp belongs to: the
// current epoch if the page has not yet been scanned this epoch, otherwise
// the next epoch (non-quiescent verification, Alg. 2). Callers must hold
// both vp.mu and part.mu.
func (m *Memory) epochSets(part *partition, vp *vPage) (rs, ws *sethash.Accumulator) {
	if vp.scannedEpoch == part.epoch {
		return &part.rsNext, &part.wsNext
	}
	return &part.rsCur, &part.wsCur
}

// Stats returns a snapshot of the memory's counters.
func (m *Memory) Stats() Stats {
	return Stats{
		Ops:        m.ops.Load(),
		PRFEvals:   m.prfEvals.Load(),
		PagesAlive: m.pageCount.Load(),
		Scans:      m.scans.Load(),
		FastScans:  m.fastScans.Load(),
		Rotations:  m.rotations.Load(),
		Alarms:     m.alarms.Load(),
	}
}

// SetHook installs (or, with nil, removes) the fault-injection hook. The
// hook applies to operations that start after the call; in-flight
// operations may complete with the previous hook.
func (m *Memory) SetHook(h Hook) {
	if h == nil {
		m.hook.Store(nil)
		return
	}
	m.hook.Store(&h)
}

// Epochs snapshots every partition's current epoch number (health
// reporting: progress here is evidence the verifier is rotating).
func (m *Memory) Epochs() []uint64 {
	out := make([]uint64, len(m.parts))
	for i, part := range m.parts {
		part.mu.Lock()
		out[i] = part.epoch
		part.mu.Unlock()
	}
	return out
}

// VerifierRunning reports whether a background verifier is attached.
func (m *Memory) VerifierRunning() bool { return m.verifier.Load() != nil }

// Alarm returns the first tamper-detection error raised by verification, or
// nil. Once an alarm is raised it is never cleared: the paper's guarantee
// is detection with evidence, not recovery.
func (m *Memory) Alarm() error {
	if b := m.alarm.Load(); b != nil {
		return b.err
	}
	return nil
}

func (m *Memory) raiseAlarm(err error) {
	m.alarms.Add(1)
	m.alarm.CompareAndSwap(nil, &alarmBox{err: err})
}

// RaiseAlarm records an integrity failure detected outside the RSWS scan
// — a tampered WAL record, checkpoint segment or manifest found during
// recovery. Durable state is untrusted memory under the same threat model
// as pages, so its tamper evidence enters the same sticky alarm, and the
// same quarantine machinery fences the instance. Like scan alarms, it is
// never cleared.
func (m *Memory) RaiseAlarm(err error) { m.raiseAlarm(err) }
