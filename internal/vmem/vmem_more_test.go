package vmem

import (
	"errors"
	"testing"

	"veridb/internal/enclave"
)

func TestEPCExhaustionSurfaces(t *testing.T) {
	// A tiny EPC budget: partition state fits, page bookkeeping soon
	// doesn't. This is the constraint that forces the database out of the
	// enclave in the first place (§3.3).
	enc, err := enclave.New(enclave.Config{EPCBytes: 520})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(enc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	allocated := 0
	for i := 0; i < 100; i++ {
		if _, err := m.NewPage(); err != nil {
			lastErr = err
			break
		}
		allocated++
	}
	if lastErr == nil {
		t.Fatal("100 pages fit in a 520-byte EPC budget")
	}
	if !errors.Is(lastErr, enclave.ErrEPCExhausted) {
		t.Fatalf("err = %v, want ErrEPCExhausted", lastErr)
	}
	if allocated == 0 {
		t.Fatal("not even one page fit")
	}
}

func TestPartitionStateRejectedWhenEPCTooSmall(t *testing.T) {
	enc, err := enclave.New(enclave.Config{EPCBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(enc, Config{Partitions: 4}); !errors.Is(err, enclave.ErrEPCExhausted) {
		t.Fatalf("err = %v, want ErrEPCExhausted", err)
	}
}

func TestTamperAfterMoveDetected(t *testing.T) {
	m := newMem(t, Config{FullScan: true})
	p1, _ := m.NewPage()
	p2, _ := m.NewPage()
	slot, _ := m.Insert(p1, []byte("protected-record"))
	newSlot, err := m.Move(p1, slot, p2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyAll(); err != nil {
		t.Fatalf("clean move failed verification: %v", err)
	}
	if err := m.TamperRecord(p2, newSlot, []byte("tampered!-record")); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyAll(); !errors.Is(err, ErrTamperDetected) {
		t.Fatalf("tamper after move undetected: %v", err)
	}
}

func TestAlarmIsolatedPerMemoryInstance(t *testing.T) {
	a := newMem(t, Config{FullScan: true})
	b := newMem(t, Config{FullScan: true})
	pid, _ := a.NewPage()
	slot, _ := a.Insert(pid, []byte("x"))
	a.TamperRecord(pid, slot, []byte("y"))
	if err := a.VerifyAll(); err == nil {
		t.Fatal("tamper undetected")
	}
	if err := b.VerifyAll(); err != nil {
		t.Fatalf("unrelated instance alarmed: %v", err)
	}
}

func TestUpdateOversizeReportsPageFull(t *testing.T) {
	m := newMem(t, Config{PageSize: 256})
	pid, _ := m.NewPage()
	slot, err := m.Insert(pid, make([]byte, 100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert(pid, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	// Growing the first record beyond the page must fail cleanly and
	// leave the sets balanced.
	if err := m.Update(pid, slot, make([]byte, 200)); err == nil {
		t.Fatal("oversize update succeeded")
	}
	if err := m.VerifyAll(); err != nil {
		t.Fatalf("failed update unbalanced the sets: %v", err)
	}
}

func TestMetadataModeOversizeUpdateStaysBalanced(t *testing.T) {
	// The failed-update path compacts internally; with metadata
	// verification on, the relocation must still be folded (regression for
	// the foldMetaSolo path).
	m := newMem(t, Config{PageSize: 512, VerifyMetadata: true})
	pid, _ := m.NewPage()
	var slots []int
	for {
		s, err := m.Insert(pid, make([]byte, 60))
		if err != nil {
			break
		}
		slots = append(slots, s)
	}
	// Free alternating slots so compaction will be attempted.
	for i := 0; i < len(slots); i += 2 {
		if err := m.Delete(pid, slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Oversize update on a survivor triggers compact-then-fail.
	if err := m.Update(pid, slots[1], make([]byte, 400)); err == nil {
		t.Fatal("oversize update unexpectedly fit")
	}
	if err := m.VerifyAll(); err != nil {
		t.Fatalf("metadata sets unbalanced after failed update: %v", err)
	}
}

func TestStatsFastScanAccounting(t *testing.T) {
	m := newMem(t, Config{})
	for i := 0; i < 5; i++ {
		pid, _ := m.NewPage()
		m.Insert(pid, []byte("d"))
	}
	m.VerifyAll()
	m.VerifyAll() // all pages untouched now
	s := m.Stats()
	if s.FastScans == 0 {
		t.Fatal("no fast scans recorded for untouched pages")
	}
	if s.Rotations < 2 {
		t.Fatalf("rotations = %d", s.Rotations)
	}
}
