package vmem

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"veridb/internal/enclave"
	"veridb/internal/page"
)

func newMem(t testing.TB, cfg Config) *Memory {
	t.Helper()
	m, err := New(enclave.NewForTest(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAddrEncoding(t *testing.T) {
	a := CellAddr(123456, 789)
	if a.PageID() != 123456 || a.Slot() != 789 || a.IsMeta() {
		t.Fatalf("cell addr decoded to (%d,%d,meta=%v)", a.PageID(), a.Slot(), a.IsMeta())
	}
	ma := MetaAddr(7, 3)
	if ma.PageID() != 7 || ma.Slot() != 3 || !ma.IsMeta() {
		t.Fatalf("meta addr decoded to (%d,%d,meta=%v)", ma.PageID(), ma.Slot(), ma.IsMeta())
	}
	if a == Addr(ma) || CellAddr(7, 3) == Addr(MetaAddr(7, 3)) {
		t.Fatal("cell and meta addresses collide")
	}
	h := HeaderAddr(9)
	if h.PageID() != 9 || !h.IsMeta() {
		t.Fatal("header addr malformed")
	}
	if h == MetaAddr(9, 3) {
		t.Fatal("header collides with pointer cell")
	}
}

func TestBasicCRUDAndVerify(t *testing.T) {
	m := newMem(t, Config{})
	pid, err := m.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	slot, err := m.Insert(pid, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Get(pid, slot)
	if err != nil || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := m.Update(pid, slot, []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, _ = m.Get(pid, slot)
	if !bytes.Equal(got, []byte("world")) {
		t.Fatalf("after update: %q", got)
	}
	if err := m.Delete(pid, slot); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(pid, slot); err == nil {
		t.Fatal("read of deleted record succeeded")
	}
	if err := m.VerifyAll(); err != nil {
		t.Fatalf("clean workload failed verification: %v", err)
	}
	if err := m.Alarm(); err != nil {
		t.Fatalf("alarm raised on clean workload: %v", err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	m := newMem(t, Config{})
	pid, _ := m.NewPage()
	slot, _ := m.Insert(pid, []byte("immutable"))
	got, _ := m.Get(pid, slot)
	got[0] = 'X'
	again, _ := m.Get(pid, slot)
	if !bytes.Equal(again, []byte("immutable")) {
		t.Fatal("Get result aliases protected memory")
	}
}

func TestNoSuchPage(t *testing.T) {
	m := newMem(t, Config{})
	if _, err := m.Get(999, 0); !errors.Is(err, ErrNoSuchPage) {
		t.Fatalf("err = %v", err)
	}
	if _, err := m.Insert(999, []byte("x")); !errors.Is(err, ErrNoSuchPage) {
		t.Fatalf("err = %v", err)
	}
	if err := m.FreePage(999); !errors.Is(err, ErrNoSuchPage) {
		t.Fatalf("err = %v", err)
	}
}

// allConfigs enumerates the configuration space the correctness properties
// must hold under.
func allConfigs() map[string]Config {
	return map[string]Config{
		"default":            {},
		"metadata":           {VerifyMetadata: true},
		"fullscan":           {FullScan: true},
		"metadata+fullscan":  {VerifyMetadata: true, FullScan: true},
		"eager-compaction":   {EagerCompaction: true},
		"meta+eager":         {VerifyMetadata: true, EagerCompaction: true},
		"no-scan-compaction": {NoScanCompaction: true},
		"partitioned":        {Partitions: 8},
		"partitioned+meta":   {Partitions: 8, VerifyMetadata: true},
		"small-pages":        {PageSize: 512},
		"small-pages+meta":   {PageSize: 512, VerifyMetadata: true},
	}
}

// TestRandomWorkloadVerifiesClean drives a random CRUD workload through
// every configuration and checks that (a) a shadow map agrees with every
// read and (b) repeated verification passes never raise a false alarm.
func TestRandomWorkloadVerifiesClean(t *testing.T) {
	for name, cfg := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			m := newMem(t, cfg)
			rng := rand.New(rand.NewSource(7))
			type loc struct {
				pid  uint64
				slot int
			}
			shadow := map[loc][]byte{}
			var locs []loc
			var pids []uint64
			for i := 0; i < 4; i++ {
				pid, err := m.NewPage()
				if err != nil {
					t.Fatal(err)
				}
				pids = append(pids, pid)
			}
			for op := 0; op < 3000; op++ {
				switch rng.Intn(10) {
				case 0, 1, 2: // insert
					rec := make([]byte, 1+rng.Intn(60))
					rng.Read(rec)
					pid := pids[rng.Intn(len(pids))]
					slot, err := m.Insert(pid, rec)
					if errors.Is(err, page.ErrPageFull) {
						continue
					}
					if err != nil {
						t.Fatal(err)
					}
					l := loc{pid, slot}
					shadow[l] = rec
					locs = append(locs, l)
				case 3, 4, 5: // get
					if len(locs) == 0 {
						continue
					}
					l := locs[rng.Intn(len(locs))]
					want, live := shadow[l]
					got, err := m.Get(l.pid, l.slot)
					if live {
						if err != nil || !bytes.Equal(got, want) {
							t.Fatalf("op %d: Get(%v) = %q, %v; want %q", op, l, got, err, want)
						}
					} else if err == nil {
						t.Fatalf("op %d: Get of deleted %v succeeded", op, l)
					}
				case 6, 7: // update
					if len(locs) == 0 {
						continue
					}
					l := locs[rng.Intn(len(locs))]
					if _, live := shadow[l]; !live {
						continue
					}
					rec := make([]byte, 1+rng.Intn(60))
					rng.Read(rec)
					err := m.Update(l.pid, l.slot, rec)
					if errors.Is(err, page.ErrPageFull) {
						continue
					}
					if err != nil {
						t.Fatal(err)
					}
					shadow[l] = rec
				case 8: // delete
					if len(locs) == 0 {
						continue
					}
					l := locs[rng.Intn(len(locs))]
					if _, live := shadow[l]; !live {
						continue
					}
					if err := m.Delete(l.pid, l.slot); err != nil {
						t.Fatal(err)
					}
					delete(shadow, l)
				case 9: // occasionally verify mid-stream
					if op%500 == 250 {
						if err := m.VerifyAll(); err != nil {
							t.Fatalf("op %d: false alarm: %v", op, err)
						}
					}
				}
			}
			for pass := 0; pass < 3; pass++ {
				if err := m.VerifyAll(); err != nil {
					t.Fatalf("pass %d: false alarm: %v", pass, err)
				}
			}
			// Shadow still agrees after compactions and scans.
			for l, want := range shadow {
				got, err := m.Get(l.pid, l.slot)
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("final check %v: %q, %v", l, got, err)
				}
			}
			if err := m.VerifyAll(); err != nil {
				t.Fatalf("post-check verification: %v", err)
			}
		})
	}
}

// TestTamperDetection checks that direct memory manipulation — the §3.1
// adversary — is caught by the next verification pass, in every
// configuration that verifies.
func TestTamperDetection(t *testing.T) {
	for name, cfg := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			m := newMem(t, cfg)
			pid, _ := m.NewPage()
			slot, err := m.Insert(pid, []byte("account balance: $100"))
			if err != nil {
				t.Fatal(err)
			}
			if err := m.VerifyAll(); err != nil {
				t.Fatalf("pre-tamper: %v", err)
			}
			if err := m.TamperRecord(pid, slot, []byte("account balance: $999")); err != nil {
				t.Fatal(err)
			}
			// Touch the page so touched-only scanning cannot skip it; a
			// tracked read of tampered data is precisely how the paper's
			// deferred detection fires.
			if _, err := m.Get(pid, slot); err != nil {
				t.Fatal(err)
			}
			if err := m.VerifyAll(); !errors.Is(err, ErrTamperDetected) {
				t.Fatalf("tampering not detected: %v", err)
			}
			if err := m.Alarm(); !errors.Is(err, ErrTamperDetected) {
				t.Fatalf("alarm not sticky: %v", err)
			}
		})
	}
}

func TestTamperDetectedByScanAloneUnderFullScan(t *testing.T) {
	// With full scans, even a never-again-read tampered page is caught.
	m := newMem(t, Config{FullScan: true})
	pid, _ := m.NewPage()
	slot, _ := m.Insert(pid, []byte("original"))
	if err := m.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	if err := m.TamperRecord(pid, slot, []byte("evil-dat")); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyAll(); !errors.Is(err, ErrTamperDetected) {
		t.Fatalf("scan missed tampering: %v", err)
	}
}

func TestTamperVersionDetected(t *testing.T) {
	m := newMem(t, Config{FullScan: true})
	pid, _ := m.NewPage()
	slot, _ := m.Insert(pid, []byte("v"))
	if err := m.TamperVersion(pid, slot, 99); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyAll(); !errors.Is(err, ErrTamperDetected) {
		t.Fatalf("version tampering not detected: %v", err)
	}
}

func TestRollbackStyleTamperDetected(t *testing.T) {
	// Restore an old value byte-for-byte: versions make the replay visible.
	m := newMem(t, Config{FullScan: true})
	pid, _ := m.NewPage()
	slot, _ := m.Insert(pid, []byte("balance=500"))
	old, _ := m.Get(pid, slot)
	if err := m.Update(pid, slot, []byte("balance=100")); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	if err := m.TamperRecord(pid, slot, old); err != nil { // put the old bytes back
		t.Fatal(err)
	}
	if err := m.VerifyAll(); !errors.Is(err, ErrTamperDetected) {
		t.Fatalf("stale-data replay not detected: %v", err)
	}
}

func TestBaselineModeTracksNothing(t *testing.T) {
	m := newMem(t, Config{Mode: ModeBaseline})
	pid, _ := m.NewPage()
	slot, _ := m.Insert(pid, []byte("x"))
	if _, err := m.Get(pid, slot); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.PRFEvals != 0 || s.Ops != 0 {
		t.Fatalf("baseline mode did verification work: %+v", s)
	}
}

func TestMoveKeepsVerificationBalanced(t *testing.T) {
	for _, parts := range []int{1, 4} {
		t.Run(fmt.Sprintf("partitions=%d", parts), func(t *testing.T) {
			m := newMem(t, Config{Partitions: parts, VerifyMetadata: true})
			p1, _ := m.NewPage()
			p2, _ := m.NewPage()
			p3, _ := m.NewPage()
			s1, _ := m.Insert(p1, []byte("moving-record"))
			m.Insert(p1, []byte("staying-record"))
			newSlot, err := m.Move(p1, s1, p2)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.Get(p2, newSlot)
			if err != nil || !bytes.Equal(got, []byte("moving-record")) {
				t.Fatalf("moved record: %q, %v", got, err)
			}
			if _, err := m.Get(p1, s1); err == nil {
				t.Fatal("source slot still readable after move")
			}
			// Cross-partition move too.
			s3, _ := m.Insert(p3, []byte("cross"))
			if _, err := m.Move(p3, s3, p1); err != nil {
				t.Fatal(err)
			}
			if err := m.VerifyAll(); err != nil {
				t.Fatalf("move unbalanced the sets: %v", err)
			}
		})
	}
}

func TestMoveSamePageIsNoop(t *testing.T) {
	m := newMem(t, Config{})
	p1, _ := m.NewPage()
	s, _ := m.Insert(p1, []byte("stay"))
	got, err := m.Move(p1, s, p1)
	if err != nil || got != s {
		t.Fatalf("Move same page = %d, %v", got, err)
	}
}

func TestFreePageBalancesSets(t *testing.T) {
	for name, cfg := range map[string]Config{"plain": {}, "meta": {VerifyMetadata: true}} {
		t.Run(name, func(t *testing.T) {
			m := newMem(t, cfg)
			pid, _ := m.NewPage()
			m.Insert(pid, []byte("a"))
			m.Insert(pid, []byte("b"))
			keep, _ := m.NewPage()
			m.Insert(keep, []byte("c"))
			if err := m.FreePage(pid); err != nil {
				t.Fatal(err)
			}
			if err := m.VerifyAll(); err != nil {
				t.Fatalf("free page unbalanced the sets: %v", err)
			}
			if _, err := m.Get(pid, 0); !errors.Is(err, ErrNoSuchPage) {
				t.Fatalf("freed page still accessible: %v", err)
			}
		})
	}
}

func TestSlotReuseDoesNotFalseAlarm(t *testing.T) {
	// Insert/delete/insert the same bytes into the same slot: without
	// version timestamps the XOR hash would cancel and raise a false
	// alarm (or mask tampering). This pins the timestamped construction.
	m := newMem(t, Config{})
	pid, _ := m.NewPage()
	for i := 0; i < 5; i++ {
		slot, err := m.Insert(pid, []byte("same-bytes"))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Delete(pid, slot); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.VerifyAll(); err != nil {
		t.Fatalf("slot reuse false alarm: %v", err)
	}
}

func TestTouchedOnlyScanSkipsCleanPages(t *testing.T) {
	m := newMem(t, Config{})
	var pids []uint64
	for i := 0; i < 10; i++ {
		pid, _ := m.NewPage()
		m.Insert(pid, []byte("data"))
		pids = append(pids, pid)
	}
	if err := m.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	before := m.Stats()
	// Touch only one page, then verify again.
	if _, err := m.Get(pids[0], 0); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	after := m.Stats()
	if full := after.Scans - before.Scans; full != 1 {
		t.Fatalf("full page scans = %d, want 1 (touched page only)", full)
	}
	if fast := after.FastScans - before.FastScans; fast != 9 {
		t.Fatalf("fast scans = %d, want 9", fast)
	}
}

func TestFullScanModeRescansEverything(t *testing.T) {
	m := newMem(t, Config{FullScan: true})
	for i := 0; i < 5; i++ {
		pid, _ := m.NewPage()
		m.Insert(pid, []byte("data"))
	}
	m.VerifyAll()
	before := m.Stats()
	m.VerifyAll() // nothing touched, still 5 full scans
	after := m.Stats()
	if full := after.Scans - before.Scans; full != 5 {
		t.Fatalf("full scans = %d, want 5", full)
	}
}

func TestScanCompactsDeferredSpace(t *testing.T) {
	m := newMem(t, Config{PageSize: 1024})
	pid, _ := m.NewPage()
	var slots []int
	for {
		s, err := m.Insert(pid, bytes.Repeat([]byte("x"), 64))
		if err != nil {
			break
		}
		slots = append(slots, s)
	}
	for i := 0; i < len(slots); i += 2 {
		if err := m.Delete(pid, slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	info, _ := m.Info(pid)
	if info.Reclaimable == 0 {
		t.Fatal("deletes did not defer reclamation")
	}
	if err := m.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	info, _ = m.Info(pid)
	if info.Reclaimable != 0 {
		t.Fatalf("scan did not compact: %d reclaimable", info.Reclaimable)
	}
	// Survivors intact and sets balanced.
	for i := 1; i < len(slots); i += 2 {
		if _, err := m.Get(pid, slots[i]); err != nil {
			t.Fatalf("survivor %d unreadable after scan compaction: %v", slots[i], err)
		}
	}
	if err := m.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestEagerCompactionReclaimsImmediately(t *testing.T) {
	m := newMem(t, Config{PageSize: 1024, EagerCompaction: true})
	pid, _ := m.NewPage()
	s1, _ := m.Insert(pid, bytes.Repeat([]byte("a"), 64))
	m.Insert(pid, bytes.Repeat([]byte("b"), 64))
	if err := m.Delete(pid, s1); err != nil {
		t.Fatal(err)
	}
	info, _ := m.Info(pid)
	if info.Reclaimable != 0 {
		t.Fatalf("eager compaction left %d reclaimable bytes", info.Reclaimable)
	}
	if err := m.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentOpsWithBackgroundVerifier(t *testing.T) {
	for _, parts := range []int{1, 8} {
		t.Run(fmt.Sprintf("partitions=%d", parts), func(t *testing.T) {
			m := newMem(t, Config{Partitions: parts})
			const workers = 8
			var pids []uint64
			for i := 0; i < 16; i++ {
				pid, _ := m.NewPage()
				pids = append(pids, pid)
			}
			if err := m.StartVerifier(50); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					var mine []struct {
						pid  uint64
						slot int
					}
					for i := 0; i < 500; i++ {
						switch rng.Intn(4) {
						case 0, 1:
							pid := pids[rng.Intn(len(pids))]
							rec := make([]byte, 1+rng.Intn(40))
							rng.Read(rec)
							if slot, err := m.Insert(pid, rec); err == nil {
								mine = append(mine, struct {
									pid  uint64
									slot int
								}{pid, slot})
							}
						case 2:
							if len(mine) > 0 {
								l := mine[rng.Intn(len(mine))]
								m.Get(l.pid, l.slot) // may race with own deletes
							}
						case 3:
							if len(mine) > 0 {
								i := rng.Intn(len(mine))
								l := mine[i]
								if err := m.Delete(l.pid, l.slot); err == nil {
									mine = append(mine[:i], mine[i+1:]...)
								}
							}
						}
					}
				}(w)
			}
			wg.Wait()
			m.StopVerifier()
			if err := m.VerifyAll(); err != nil {
				t.Fatalf("concurrent workload false alarm: %v", err)
			}
		})
	}
}

func TestBackgroundVerifierDetectsTamper(t *testing.T) {
	m := newMem(t, Config{FullScan: true})
	pid, _ := m.NewPage()
	slot, _ := m.Insert(pid, []byte("watched-value"))
	m.VerifyAll()
	if err := m.TamperRecord(pid, slot, []byte("corrupted-xxx")); err != nil {
		t.Fatal(err)
	}
	if err := m.StartVerifier(1); err != nil { // scan a page per op
		t.Fatal(err)
	}
	// Drive ops on another page so the verifier advances; the verifier is
	// asynchronous, so give it wall time to drain its kicks.
	other, _ := m.NewPage()
	deadline := time.Now().Add(5 * time.Second)
	for m.Alarm() == nil && time.Now().Before(deadline) {
		m.Insert(other, []byte("traffic"))
		time.Sleep(100 * time.Microsecond)
	}
	m.StopVerifier()
	if err := m.Alarm(); !errors.Is(err, ErrTamperDetected) {
		t.Fatalf("background verifier missed tampering: %v", err)
	}
}

func TestStopVerifierIdempotentAndRestartable(t *testing.T) {
	m := newMem(t, Config{})
	m.StopVerifier() // no-op when not running
	if err := m.StartVerifier(10); err != nil {
		t.Fatal(err)
	}
	m.StopVerifier()
	if err := m.StartVerifier(10); err != nil { // restart allowed after stop
		t.Fatal(err)
	}
	m.StopVerifier()
}

func TestStartVerifierTwiceReturnsError(t *testing.T) {
	m := newMem(t, Config{})
	if err := m.StartVerifier(10); err != nil {
		t.Fatal(err)
	}
	defer m.StopVerifier()
	if err := m.StartVerifier(10); !errors.Is(err, ErrVerifierRunning) {
		t.Fatalf("double start = %v, want ErrVerifierRunning", err)
	}
}

func TestStatsCounters(t *testing.T) {
	m := newMem(t, Config{})
	pid, _ := m.NewPage()
	slot, _ := m.Insert(pid, []byte("x")) // 1 op, 1 PRF
	m.Get(pid, slot)                      // 1 op, 2 PRFs
	s := m.Stats()
	if s.Ops != 2 {
		t.Fatalf("Ops = %d, want 2", s.Ops)
	}
	if s.PRFEvals != 3 {
		t.Fatalf("PRFEvals = %d, want 3", s.PRFEvals)
	}
	if s.PagesAlive != 1 {
		t.Fatalf("PagesAlive = %d", s.PagesAlive)
	}
}

func TestMetadataModeCostsMorePRFs(t *testing.T) {
	// §4.3: excluding metadata removes 50–65 % of set operations. Pin the
	// relationship: metadata mode must evaluate strictly more PRFs for the
	// same workload.
	run := func(cfg Config) uint64 {
		m := newMem(t, cfg)
		pid, _ := m.NewPage()
		for i := 0; i < 50; i++ {
			slot, _ := m.Insert(pid, []byte("record-payload"))
			m.Get(pid, slot)
			m.Update(pid, slot, []byte("record-payload2"))
			m.Delete(pid, slot)
		}
		return m.Stats().PRFEvals
	}
	plain := run(Config{})
	meta := run(Config{VerifyMetadata: true})
	if meta < plain*3/2 {
		t.Fatalf("metadata mode PRFs %d not ≫ plain %d", meta, plain)
	}
}

func TestVerifyAllOnEmptyMemory(t *testing.T) {
	m := newMem(t, Config{Partitions: 4})
	if err := m.VerifyAll(); err != nil {
		t.Fatalf("empty memory failed verification: %v", err)
	}
}

func TestManyPartitionsDistributePages(t *testing.T) {
	m := newMem(t, Config{Partitions: 16})
	for i := 0; i < 64; i++ {
		pid, _ := m.NewPage()
		if _, err := m.Insert(pid, []byte("d")); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, p := range m.parts {
		if len(p.pages) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 8 {
		t.Fatalf("pages concentrated in %d/16 partitions", nonEmpty)
	}
}
