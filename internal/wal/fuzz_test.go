package wal

// Fuzz targets for the decode paths that face untrusted disk bytes. The
// contract under fuzzing is narrow and absolute: arbitrary input yields
// either a valid result or an error wrapping ErrTorn/ErrTamper — never a
// panic, never an untyped error, never an out-of-range consumed count.
//
// Seed corpus lives in testdata/fuzz/<FuzzName>/ (regenerate with
// VERIDB_UPDATE_GOLDEN=1 go test -run TestGenerateFuzzCorpus ./internal/wal).

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"veridb/internal/record"
)

// fuzzKey is the fixed MAC key every fuzz target verifies against; seeds
// in testdata are encoded under it so the valid-decode path gets coverage.
func fuzzKey() []byte { return bytes.Repeat([]byte{0x42}, keySize) }

func typedOrNil(t *testing.T, err error) {
	t.Helper()
	if err != nil && !errors.Is(err, ErrTorn) && !errors.Is(err, ErrTamper) {
		t.Fatalf("untyped decode error: %v", err)
	}
}

func FuzzWALRecordDecode(f *testing.F) {
	key := fuzzKey()
	var prev [macSize]byte
	f.Add(appendRecord(nil, key, prev, 0, RecStmt, []byte("INSERT INTO t VALUES (1)")))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, minRecordLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, _, n, err := decodeRecord(data, key, prev, 0)
		typedOrNil(t, err)
		if err != nil {
			return
		}
		if n < minRecordLen || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if rec.Seq != 0 {
			t.Fatalf("accepted record with seq %d under wantSeq 0", rec.Seq)
		}
	})
}

func FuzzWALHeaderDecode(f *testing.F) {
	key := fuzzKey()
	f.Add(encodeWALHeader(key, 3, 17))
	f.Add([]byte(walMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		ckptID, baseSeq, _, err := decodeWALHeader(data, key)
		typedOrNil(t, err)
		_ = ckptID
		_ = baseSeq
	})
}

func FuzzManifestDecode(f *testing.F) {
	key := fuzzKey()
	m := &Manifest{CheckpointID: 2, BaseSeq: 40, Segments: []SegmentEntry{
		{Table: "kv", Size: 128, MAC: [macSize]byte{1, 2, 3}},
	}}
	f.Add(encodeManifest(m, key))
	f.Add([]byte(manifestMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := decodeManifest(data, key)
		typedOrNil(t, err)
		if err == nil && got == nil {
			t.Fatal("nil manifest with nil error")
		}
	})
}

func FuzzSegmentDecode(f *testing.F) {
	img := &TableImage{
		Name:         "kv",
		Columns:      []record.Column{{Name: "k", Type: record.TypeInt}, {Name: "v", Type: record.TypeText}},
		PrimaryKey:   0,
		ChainColumns: []int{1},
		Rows:         []record.Tuple{{record.Int(1), record.Text("one")}},
	}
	seed, err := encodeSegment(img, 1)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(segMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := decodeSegment(data, 1, "kv")
		typedOrNil(t, err)
		if err == nil && got == nil {
			t.Fatal("nil image with nil error")
		}
	})
}

// TestGenerateFuzzCorpus writes the committed seed corpus: one valid
// encoding and one structurally-plausible-but-broken input per target, in
// the `go test fuzz v1` format. Run with VERIDB_UPDATE_GOLDEN=1 to
// refresh after a format change.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("VERIDB_UPDATE_GOLDEN") == "" {
		t.Skip("set VERIDB_UPDATE_GOLDEN=1 to regenerate the fuzz seed corpus")
	}
	key := fuzzKey()
	var prev [macSize]byte
	img := &TableImage{
		Name:         "kv",
		Columns:      []record.Column{{Name: "k", Type: record.TypeInt}, {Name: "v", Type: record.TypeText}},
		PrimaryKey:   0,
		ChainColumns: []int{1},
		Rows:         []record.Tuple{{record.Int(1), record.Text("one")}},
	}
	validRec := appendRecord(nil, key, prev, 0, RecStmt, []byte("INSERT INTO t VALUES (1)"))
	validMan := encodeManifest(&Manifest{CheckpointID: 2, BaseSeq: 40, Segments: []SegmentEntry{{Table: "kv", Size: 64}}}, key)
	validSeg, err := encodeSegment(img, 1)
	if err != nil {
		t.Fatal(err)
	}
	validHdr := encodeWALHeader(key, 3, 17)
	corpus := map[string][][]byte{
		"FuzzWALRecordDecode": {validRec, validRec[:len(validRec)-5]},
		"FuzzWALHeaderDecode": {validHdr, validHdr[:walHeaderSize-3]},
		"FuzzManifestDecode":  {validMan, validMan[:len(validMan)-5]},
		"FuzzSegmentDecode":   {validSeg, validSeg[:len(validSeg)-5]},
	}
	for name, inputs := range corpus {
		dir := filepath.Join("testdata", "fuzz", name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, in := range inputs {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(in)) + ")\n"
			path := filepath.Join(dir, "seed-"+strconv.Itoa(i))
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}
