package wal

// Group commit: the leader/follower commit pipeline. Concurrent callers
// Enqueue encoded records — the MAC chain advances at enqueue time, under
// the log mutex, so the on-disk byte order and the torn-vs-tamper
// classifier are exactly those of serial appends — and the first enqueuer
// of an open group becomes its leader. The leader waits up to
// GroupCommitMaxDelay (or until the group reaches GroupCommitMaxBatch
// waiters), drains the group, and writes the whole batch with a single
// write+fsync. Every waiter's Wait returns only after that fsync: the
// zero-acked-loss invariant is untouched, the fsync is just amortised.
//
// Flushes happen outside the log mutex so the next group can form while
// the current one is inside fsync (pipelining). Go mutexes are not FIFO,
// so byte order on disk is enforced explicitly: each drained group chains
// on the previous group's "flushed" channel and writes only after its
// predecessor's bytes are down.
//
// A failed group write or fsync is sticky: l.failed is set under the log
// mutex before any waiter of the failing group — or of any later group,
// whose records chain past bytes that never reached disk — is woken, so
// no caller can ack a statement whose durability is in doubt.

import (
	"errors"
	"fmt"
	"os"
	"time"
)

// Ticket is one caller's stake in a pending group: Wait blocks until the
// group containing the caller's record is durably on disk (or failed).
type Ticket struct {
	l      *Log
	seq    uint64
	ch     chan error
	leader bool
	delay  time.Duration
	// done marks the inline (group-commit-off) path: the record was
	// written and fsynced during Enqueue, Wait returns immediately.
	done bool
}

// SetGroupCommit configures the commit pipeline. delay <= 0 disables
// grouping: Enqueue writes and fsyncs inline, bit-identical to the
// serial Append path. maxBatch <= 0 means no early flush — groups close
// on the delay timer alone.
func (l *Log) SetGroupCommit(delay time.Duration, maxBatch int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.gcDelay = delay
	l.gcMaxBatch = maxBatch
}

// SetSyncHook substitutes fn for File.Sync on the append path — fault
// injection for tests. A nil fn restores the real fsync.
func (l *Log) SetSyncHook(fn func(*os.File) error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.syncHook = fn
}

// Enqueue encodes one record into the open group and returns a Ticket.
// The chain state (previous MAC, next sequence) advances immediately, so
// a later Enqueue chains on this record even before it is flushed. The
// record is durable only once Ticket.Wait returns nil.
func (l *Log) Enqueue(typ byte, payload []byte) (*Ticket, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil, errors.New("wal: log closed")
	}
	if l.failed != nil {
		return nil, l.failed
	}
	seq := l.nextSeq
	if l.gcDelay <= 0 {
		// Inline path: exactly the serial append, one write+fsync per
		// record, under the mutex.
		buf := appendRecord(nil, l.key, l.prevMAC, seq, typ, payload)
		if _, err := l.f.Write(buf); err != nil {
			l.failed = fmt.Errorf("wal: appending record %d: %w", seq, err)
			return nil, l.failed
		}
		if err := l.syncLocked(l.f); err != nil {
			l.failed = fmt.Errorf("wal: syncing record %d: %w", seq, err)
			return nil, l.failed
		}
		l.prevMAC = chainMAC(l.key, l.prevMAC, seq, typ, payload)
		l.nextSeq = seq + 1
		return &Ticket{seq: seq, done: true}, nil
	}

	l.gbuf = appendRecord(l.gbuf, l.key, l.prevMAC, seq, typ, payload)
	l.prevMAC = chainMAC(l.key, l.prevMAC, seq, typ, payload)
	l.nextSeq = seq + 1
	ch := make(chan error, 1)
	l.gwaiters = append(l.gwaiters, ch)
	t := &Ticket{l: l, seq: seq, ch: ch, delay: l.gcDelay}
	if !l.leaderActive {
		l.leaderActive = true
		t.leader = true
	}
	if l.gcMaxBatch > 0 && len(l.gwaiters) >= l.gcMaxBatch {
		select {
		case l.full <- struct{}{}:
		default:
		}
	}
	return t, nil
}

// Wait blocks until the ticket's record is durable and returns its
// sequence number. If the caller is the group leader it first runs the
// group's delay window and flush; followers just wait for the leader's
// signal. An error means the record may not be on disk — the caller must
// not ack — and the log is fenced.
func (t *Ticket) Wait() (uint64, error) {
	if t.done {
		return t.seq, nil
	}
	if t.leader {
		timer := time.NewTimer(t.delay)
		select {
		case <-t.l.full:
		case <-timer.C:
		}
		timer.Stop()
		t.l.flushGroup()
	}
	if err := <-t.ch; err != nil {
		return 0, err
	}
	return t.seq, nil
}

// Append writes one record, fsyncs (possibly as part of a group), and
// returns its sequence number. The record is durable — and may be acked —
// only once Append returns nil.
func (l *Log) Append(typ byte, payload []byte) (uint64, error) {
	t, err := l.Enqueue(typ, payload)
	if err != nil {
		return 0, err
	}
	return t.Wait()
}

// flushGroup drains the open group and writes it as one unit, ordered
// strictly after every previously drained group. Called by the group
// leader, and by Close to steal-drain a pending group.
func (l *Log) flushGroup() {
	l.mu.Lock()
	buf, waiters := l.gbuf, l.gwaiters
	l.gbuf, l.gwaiters = nil, nil
	l.leaderActive = false
	// Drop a stale early-flush signal so the next leader's window is not
	// cut short by this group's fullness.
	select {
	case <-l.full:
	default:
	}
	prev := l.flushed
	mine := make(chan struct{})
	l.flushed = mine
	f := l.f
	l.mu.Unlock()

	if prev != nil {
		<-prev // predecessor group's bytes are down (or it failed)
	}

	l.mu.Lock()
	err := l.failed
	l.mu.Unlock()
	if err == nil && len(buf) > 0 {
		if _, werr := f.Write(buf); werr != nil {
			err = fmt.Errorf("wal: appending group: %w", werr)
		} else if serr := l.sync(f); serr != nil {
			err = fmt.Errorf("wal: syncing group: %w", serr)
		}
		if err != nil {
			// Fence before any waiter wakes: once failed is visible, no
			// Enqueue succeeds and every later group's flush fails too.
			l.mu.Lock()
			if l.failed == nil {
				l.failed = err
			}
			l.mu.Unlock()
		}
	}
	close(mine)
	for _, ch := range waiters {
		ch <- err
	}
}

// drainPending flushes any open group and waits for every drained group
// to reach disk. Callers must NOT hold l.mu. Used by Close; Checkpoint
// needs no equivalent because core holds its statement gate exclusively,
// which quiesces all in-flight Waits first.
func (l *Log) drainPending() {
	l.flushGroup()
	l.mu.Lock()
	last := l.flushed
	l.mu.Unlock()
	if last != nil {
		<-last
	}
}

// sync runs the configured fsync (or the injected hook) on f.
func (l *Log) sync(f *os.File) error {
	l.mu.Lock()
	hook := l.syncHook
	l.mu.Unlock()
	if hook != nil {
		return hook(f)
	}
	return f.Sync()
}

// syncLocked is sync for callers already holding l.mu.
func (l *Log) syncLocked(f *os.File) error {
	if l.syncHook != nil {
		return l.syncHook(f)
	}
	return f.Sync()
}
