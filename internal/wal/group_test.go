package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupCommitConcurrentAppends: many concurrent appenders under group
// commit produce a log that replays to exactly the acked record set, in
// chain order, with strictly fewer fsyncs than records (the whole point).
func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	l.SetGroupCommit(2*time.Millisecond, 8)
	var syncs atomic.Int64
	l.SetSyncHook(func(f *os.File) error {
		syncs.Add(1)
		return f.Sync()
	})

	const workers, per = 8, 25
	var wg sync.WaitGroup
	acked := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq, err := l.Append(RecStmt, []byte(fmt.Sprintf("stmt-%d-%d", w, i)))
				if err != nil {
					t.Errorf("worker %d append %d: %v", w, i, err)
					return
				}
				acked[w] = append(acked[w], seq)
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if n := syncs.Load(); n >= workers*per {
		t.Fatalf("group commit issued %d fsyncs for %d records — no batching", n, workers*per)
	}

	// Every worker's acks are unique and the replayed tail is the exact
	// acked set in sequence order.
	seen := map[uint64]bool{}
	for w := range acked {
		if len(acked[w]) != per {
			t.Fatalf("worker %d acked %d, want %d", w, len(acked[w]), per)
		}
		for _, s := range acked[w] {
			if seen[s] {
				t.Fatalf("sequence %d acked twice", s)
			}
			seen[s] = true
		}
	}
	l2, rec := openT(t, dir)
	defer l2.Close()
	if len(rec.Tail) != workers*per {
		t.Fatalf("recovered %d records, want %d", len(rec.Tail), workers*per)
	}
	for i, r := range rec.Tail {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
	if rec.TornBytes != 0 {
		t.Fatalf("clean group-committed log reported %d torn bytes", rec.TornBytes)
	}
}

// TestGroupCommitBytesIdenticalToSerial: the same statement sequence
// appended serially and through the group committer produces
// byte-identical log files — the on-disk format and the classifier's
// assumptions are unchanged.
func TestGroupCommitBytesIdenticalToSerial(t *testing.T) {
	stmts := make([]string, 40)
	for i := range stmts {
		stmts[i] = fmt.Sprintf("INSERT INTO t VALUES (%d)", i)
	}
	write := func(dir string, group bool) []byte {
		l, _ := openT(t, dir)
		if group {
			l.SetGroupCommit(time.Millisecond, 4)
		}
		for _, s := range stmts {
			if _, err := l.Append(RecStmt, []byte(s)); err != nil {
				t.Fatal(err)
			}
		}
		path := l.Path()
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	serial := write(t.TempDir(), false)
	grouped := write(t.TempDir(), true)
	// Headers differ (independent keys), but record areas must have equal
	// structure; re-derive boundaries and compare record counts + sizes.
	bs, bg := Boundaries(serial), Boundaries(grouped)
	if len(bs) != len(bg) {
		t.Fatalf("serial %d boundaries, grouped %d", len(bs), len(bg))
	}
	for i := range bs {
		if bs[i] != bg[i] {
			t.Fatalf("boundary %d: serial %d, grouped %d", i, bs[i], bg[i])
		}
	}
}

// TestGroupCommitFailedSyncFailsEveryWaiter: a failing group fsync must
// error every waiter of the group and fence the log before any of them
// returns — no caller may ack on top of a sync that did not happen.
func TestGroupCommitFailedSyncFailsEveryWaiter(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	l.SetGroupCommit(5*time.Millisecond, 64)
	syncErr := errors.New("injected fsync failure")
	l.SetSyncHook(func(*os.File) error { return syncErr })

	const workers = 6
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, errs[w] = l.Append(RecStmt, []byte(fmt.Sprintf("stmt-%d", w)))
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err == nil {
			t.Fatalf("worker %d acked despite failed group fsync", w)
		}
	}
	// The log is fenced: later appends fail immediately, before any write.
	if _, err := l.Append(RecStmt, []byte("after")); err == nil {
		t.Fatal("append succeeded on a fenced log")
	}
	l.SetSyncHook(nil)
	if _, err := l.Append(RecStmt, []byte("still fenced")); err == nil {
		t.Fatal("fence lifted by restoring the sync hook")
	}
	l.Close()
}

// TestBoundariesMatchesAckedSizes: the structural scanner reproduces the
// per-record file sizes the serial path observes.
func TestBoundariesMatchesAckedSizes(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	var sizes []int64
	fi, err := os.Stat(l.Path())
	if err != nil {
		t.Fatal(err)
	}
	sizes = append(sizes, fi.Size())
	for i := 0; i < 10; i++ {
		if _, err := l.Append(RecStmt, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(l.Path())
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, fi.Size())
	}
	path := l.Path()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := Boundaries(buf)
	if len(got) != len(sizes) {
		t.Fatalf("Boundaries found %d offsets, want %d", len(got), len(sizes))
	}
	for i := range got {
		if got[i] != sizes[i] {
			t.Fatalf("boundary %d = %d, want %d", i, got[i], sizes[i])
		}
	}
	if !bytes.Equal(buf[:got[0]], buf[:walHeaderSize]) {
		t.Fatal("first boundary is not the header end")
	}
}
