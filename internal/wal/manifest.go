package wal

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Manifest is the root of trust for one checkpoint: it lists every
// segment with its size and MAC, binds them to a checkpoint ID and the
// WAL sequence number the checkpoint captured, and carries its own MAC
// over the whole body. Recovery admits a checkpoint only through a
// structurally complete, MAC-valid manifest; a torn manifest is the
// crash artifact the checkpoint protocol's write ordering allows (the
// manifest is written after its segments), and recovery falls back to
// the previous checkpoint, whose files are deleted only after the new
// WAL file exists.
type Manifest struct {
	CheckpointID uint64
	// BaseSeq is the next WAL sequence number at checkpoint time: the
	// first record of the paired WAL file. Sequence numbers never reset.
	BaseSeq  uint64
	Segments []SegmentEntry
}

// SegmentEntry authenticates one segment file.
type SegmentEntry struct {
	Table string
	Size  uint64
	MAC   [macSize]byte
}

// manifestMagic opens every manifest file.
var manifestMagic = []byte("VCKP1\x00")

// maxManifestTables bounds the segment count; checkpointing that many
// tables is impossible, so larger counts are structural corruption.
const maxManifestTables = 1 << 20

// encodeManifest serialises a manifest, MAC included.
func encodeManifest(m *Manifest, key []byte) []byte {
	buf := append([]byte(nil), manifestMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, m.CheckpointID)
	buf = binary.LittleEndian.AppendUint64(buf, m.BaseSeq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Segments)))
	for _, s := range m.Segments {
		buf = appendString(buf, s.Table)
		buf = binary.LittleEndian.AppendUint64(buf, s.Size)
		buf = append(buf, s.MAC[:]...)
	}
	mac := manifestMAC(key, buf)
	return append(buf, mac[:]...)
}

// manifestMAC authenticates a manifest body (everything before the MAC).
func manifestMAC(key, body []byte) [macSize]byte {
	h := hmac.New(sha256.New, key)
	h.Write([]byte(macManifest))
	h.Write(body)
	var out [macSize]byte
	h.Sum(out[:0])
	return out
}

// decodeManifest parses and authenticates a manifest. Truncation wraps
// ErrTorn (a crash can leave a partial manifest; recovery falls back to
// the previous checkpoint), while a structurally complete manifest whose
// MAC fails — or one with bytes beyond its declared extent — wraps
// ErrTamper and must quarantine: falling back past a tampered manifest
// would let an adversary silently roll the database to an older state.
func decodeManifest(buf []byte, key []byte) (*Manifest, error) {
	d := segDecoder{buf: buf}
	torn := func(err error) (*Manifest, error) {
		return nil, fmt.Errorf("%w: manifest truncated: %v", ErrTorn, err)
	}
	magic, err := d.take(len(manifestMagic))
	if err != nil {
		return torn(err)
	}
	if string(magic) != string(manifestMagic) {
		return nil, fmt.Errorf("%w: bad manifest magic %q", ErrTamper, magic)
	}
	m := &Manifest{}
	if m.CheckpointID, err = d.u64(); err != nil {
		return torn(err)
	}
	if m.BaseSeq, err = d.u64(); err != nil {
		return torn(err)
	}
	n, err := d.u32()
	if err != nil {
		return torn(err)
	}
	if n > maxManifestTables {
		return nil, fmt.Errorf("%w: manifest claims %d segments", ErrTamper, n)
	}
	for i := uint32(0); i < n; i++ {
		var e SegmentEntry
		if e.Table, err = d.str(); err != nil {
			return torn(err)
		}
		if e.Size, err = d.u64(); err != nil {
			return torn(err)
		}
		mb, err := d.take(macSize)
		if err != nil {
			return torn(err)
		}
		copy(e.MAC[:], mb)
		m.Segments = append(m.Segments, e)
	}
	mb, err := d.take(macSize)
	if err != nil {
		return torn(err)
	}
	if d.off != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing manifest bytes", ErrTamper, len(buf)-d.off)
	}
	want := manifestMAC(key, buf[:len(buf)-macSize])
	if !hmac.Equal(mb, want[:]) {
		return nil, fmt.Errorf("%w: manifest MAC mismatch (ckpt %d)", ErrTamper, m.CheckpointID)
	}
	return m, nil
}
