// Package wal is VeriDB's authenticated durable storage layer: a
// sequence-chained, MACed write-ahead log plus immutable checkpoint
// segments with a MACed manifest. The disk is untrusted under the paper's
// threat model (§2, §3.1) — persistence is just another adversarial
// memory — so every durable byte re-enters the enclave only through MAC
// and sequence checks, exactly as pages in vmem re-enter through the
// RSWS protocol.
//
// The chain rule: each WAL record's MAC covers its predecessor's MAC (the
// first record chains to the file header's MAC, which binds the
// checkpoint ID and base sequence number). Truncating the middle of the
// log, reordering records, or splicing a log tail onto the wrong
// checkpoint all break the chain. Only the tail can be lost — the one
// corruption a genuine crash can produce — and torn tails are
// distinguished from tampering by position: a structurally incomplete or
// MAC-invalid suffix at end-of-file is a crash artifact (those bytes were
// never acked, because appends ack only after fsync returns), while any
// chain violation with further bytes behind it is evidence of tampering
// and must quarantine, not truncate.
package wal

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Record types.
const (
	// RecStmt is one logged SQL statement: the payload is the statement
	// text, replayed through the parser and executor on recovery.
	RecStmt byte = 1
)

// macSize is the length of every chain MAC (HMAC-SHA256).
const macSize = sha256.Size

// recHeaderSize is the fixed prefix of one record body: seq (8) + type (1).
const recHeaderSize = 9

// minRecordLen is the smallest legal record body: header + empty payload +
// MAC.
const minRecordLen = recHeaderSize + macSize

// MaxRecordLen bounds one record body. A length prefix beyond it with the
// bytes actually present is structural corruption, not a big record.
const MaxRecordLen = 16 << 20

// ErrTamper is wrapped by every error that means the durable state was
// modified by something other than a crash: chain MAC violations with
// records behind them, manifest or segment MAC mismatches, and files
// whose absence cannot be explained by the checkpoint protocol's write
// ordering. Callers must route it into the quarantine path — a tampered
// image is never truncated into service.
var ErrTamper = errors.New("wal: durable state tampered")

// ErrTorn is wrapped by classifications of a crash-torn suffix. It is
// internal to recovery (torn tails are dropped, not surfaced), but typed
// so tests can assert the classification.
var ErrTorn = errors.New("wal: torn tail")

// Record is one verified WAL record.
type Record struct {
	Seq     uint64
	Type    byte
	Payload []byte
}

// macPersonal domain-separates the MAC uses so a record MAC can never be
// replayed as a header or manifest MAC.
const (
	macRecord   = "veridb-wal-record-v1"
	macHeader   = "veridb-wal-header-v1"
	macManifest = "veridb-manifest-v1"
	macSegment  = "veridb-segment-v1"
)

// chainMAC computes a record's MAC: HMAC(key, personal ‖ prevMAC ‖ seq ‖
// type ‖ payload). Folding prevMAC in is the chain rule.
func chainMAC(key []byte, prev [macSize]byte, seq uint64, typ byte, payload []byte) [macSize]byte {
	h := hmac.New(sha256.New, key)
	h.Write([]byte(macRecord))
	h.Write(prev[:])
	var b [9]byte
	binary.LittleEndian.PutUint64(b[:8], seq)
	b[8] = typ
	h.Write(b[:])
	h.Write(payload)
	var out [macSize]byte
	h.Sum(out[:0])
	return out
}

// appendRecord serialises one record: length prefix, body, chain MAC.
func appendRecord(buf []byte, key []byte, prev [macSize]byte, seq uint64, typ byte, payload []byte) []byte {
	body := recHeaderSize + len(payload) + macSize
	buf = binary.LittleEndian.AppendUint32(buf, uint32(body))
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = append(buf, typ)
	buf = append(buf, payload...)
	mac := chainMAC(key, prev, seq, typ, payload)
	return append(buf, mac[:]...)
}

// decodeRecord parses and authenticates the record at the start of buf,
// returning the record, its MAC (the next record's prev), and the total
// bytes consumed. Classification is positional: when the failure could
// have been produced by losing a write tail (the claimed extent reaches
// or passes end-of-buffer), the error wraps ErrTorn; when intact bytes
// follow the violation, it wraps ErrTamper.
func decodeRecord(buf []byte, key []byte, prev [macSize]byte, wantSeq uint64) (Record, [macSize]byte, int, error) {
	var noMAC [macSize]byte
	if len(buf) < 4 {
		return Record{}, noMAC, 0, fmt.Errorf("%w: %d-byte length fragment", ErrTorn, len(buf))
	}
	bodyLen := int(binary.LittleEndian.Uint32(buf))
	rest := buf[4:]
	if bodyLen > len(rest) {
		// The claimed body extends past the bytes present. Either a torn
		// length field or a torn body — both crash-shaped — unless the
		// length is structurally impossible yet more plausible bytes would
		// have followed; with nothing behind it, torn wins.
		return Record{}, noMAC, 0, fmt.Errorf("%w: record claims %d body bytes, %d present", ErrTorn, bodyLen, len(rest))
	}
	atEOF := bodyLen == len(rest)
	classify := func(detail string, args ...any) error {
		kind := ErrTamper
		if atEOF {
			// A final record that fails structurally or cryptographically
			// is a torn append: appends ack only after fsync, so an acked
			// record cannot be half-present. (A tampered final record is
			// indistinguishable from this and is bounded by the client's
			// §5.1 sequence-number rollback defence.)
			kind = ErrTorn
		}
		return fmt.Errorf("%w: %s", kind, fmt.Sprintf(detail, args...))
	}
	if bodyLen < minRecordLen || bodyLen > MaxRecordLen {
		return Record{}, noMAC, 0, classify("record body length %d outside [%d, %d]", bodyLen, minRecordLen, MaxRecordLen)
	}
	body := rest[:bodyLen]
	seq := binary.LittleEndian.Uint64(body)
	typ := body[recHeaderSize-1]
	payload := body[recHeaderSize : bodyLen-macSize]
	var mac [macSize]byte
	copy(mac[:], body[bodyLen-macSize:])
	want := chainMAC(key, prev, seq, typ, payload)
	if !hmac.Equal(mac[:], want[:]) {
		return Record{}, noMAC, 0, classify("record seq %d chain MAC mismatch", seq)
	}
	if seq != wantSeq {
		// The MAC is valid under the chained predecessor, so the bytes are
		// authentic — but the sequence number disagrees with the chain
		// position. That cannot happen by crash or by writer bug without
		// also breaking the MAC chain; treat as tampering.
		return Record{}, noMAC, 0, fmt.Errorf("%w: record seq %d where %d expected", ErrTamper, seq, wantSeq)
	}
	return Record{Seq: seq, Type: typ, Payload: append([]byte(nil), payload...)}, mac, 4 + bodyLen, nil
}

// walMagic opens every WAL file; headerSize is the full fixed header:
// magic (6) + checkpoint ID (8) + base seq (8) + header MAC.
var walMagic = []byte("VWAL1\x00")

const walHeaderSize = 6 + 8 + 8 + macSize

// headerMAC binds a WAL file to its checkpoint: HMAC(key, personal ‖
// magic ‖ ckptID ‖ baseSeq). It doubles as the chain's genesis MAC, so a
// log tail cannot be spliced onto a different checkpoint.
func headerMAC(key []byte, ckptID, baseSeq uint64) [macSize]byte {
	h := hmac.New(sha256.New, key)
	h.Write([]byte(macHeader))
	h.Write(walMagic)
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], ckptID)
	binary.LittleEndian.PutUint64(b[8:], baseSeq)
	h.Write(b[:])
	var out [macSize]byte
	h.Sum(out[:0])
	return out
}

// encodeWALHeader serialises a WAL file header.
func encodeWALHeader(key []byte, ckptID, baseSeq uint64) []byte {
	buf := make([]byte, 0, walHeaderSize)
	buf = append(buf, walMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, ckptID)
	buf = binary.LittleEndian.AppendUint64(buf, baseSeq)
	mac := headerMAC(key, ckptID, baseSeq)
	return append(buf, mac[:]...)
}

// decodeWALHeader parses and authenticates a WAL file header, returning
// the checkpoint ID, base sequence and genesis MAC. A short header is a
// crash artifact (the file is created and synced before any record is
// acked) and wraps ErrTorn; a complete header that fails its MAC wraps
// ErrTamper.
func decodeWALHeader(buf []byte, key []byte) (ckptID, baseSeq uint64, genesis [macSize]byte, err error) {
	var noMAC [macSize]byte
	if len(buf) < walHeaderSize {
		return 0, 0, noMAC, fmt.Errorf("%w: %d-byte WAL header fragment", ErrTorn, len(buf))
	}
	if string(buf[:6]) != string(walMagic) {
		return 0, 0, noMAC, fmt.Errorf("%w: bad WAL magic %q", ErrTamper, buf[:6])
	}
	ckptID = binary.LittleEndian.Uint64(buf[6:])
	baseSeq = binary.LittleEndian.Uint64(buf[14:])
	var mac [macSize]byte
	copy(mac[:], buf[22:22+macSize])
	want := headerMAC(key, ckptID, baseSeq)
	if !hmac.Equal(mac[:], want[:]) {
		return 0, 0, noMAC, fmt.Errorf("%w: WAL header MAC mismatch (ckpt %d)", ErrTamper, ckptID)
	}
	return ckptID, baseSeq, want, nil
}
