package wal

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"veridb/internal/record"
)

// TableImage is one table's checkpointed state: schema metadata plus every
// row in primary-key order. Checkpoints are built bottom-up from a
// verified sequential scan (the bubt idiom: freeze sorted, verified state
// into an immutable file), and recovery re-inserts the rows in the same
// order through the protected write interfaces, so the rebuilt image
// re-enters the RSWS accounting row by row.
type TableImage struct {
	Name       string
	Columns    []record.Column
	PrimaryKey int
	// ChainColumns lists the extra chain columns beyond the primary key
	// (the TableSpec convention).
	ChainColumns []int
	Rows         []record.Tuple
}

// segMagic opens every segment file.
var segMagic = []byte("VSEG1\x00")

// maxSegmentStr bounds every length-prefixed string and the column/chain
// counts inside a segment header; a manifest-authenticated segment can
// never legitimately exceed them, so violations are structural corruption.
const maxSegmentStr = 1 << 16

// encodeSegment serialises one table image. The whole byte stream is
// covered by a MAC recorded in the manifest (segMAC), so the file itself
// carries no trailer.
func encodeSegment(img *TableImage, ckptID uint64) ([]byte, error) {
	if len(img.Name) >= maxSegmentStr {
		return nil, fmt.Errorf("wal: table name %d bytes long", len(img.Name))
	}
	if len(img.Columns) >= maxSegmentStr || len(img.ChainColumns) >= maxSegmentStr {
		return nil, fmt.Errorf("wal: table %q schema too wide to checkpoint", img.Name)
	}
	buf := append([]byte(nil), segMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, ckptID)
	buf = appendString(buf, img.Name)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(img.Columns)))
	for _, c := range img.Columns {
		if len(c.Name) >= maxSegmentStr {
			return nil, fmt.Errorf("wal: column name %d bytes long", len(c.Name))
		}
		buf = appendString(buf, c.Name)
		buf = append(buf, byte(c.Type))
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(img.PrimaryKey))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(img.ChainColumns)))
	for _, c := range img.ChainColumns {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(c))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(img.Rows)))
	for _, row := range img.Rows {
		enc := record.Encode(&record.Record{Data: row})
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(enc)))
		buf = append(buf, enc...)
	}
	return buf, nil
}

// decodeSegment parses one segment byte stream. The caller has already
// verified the manifest's MAC over these exact bytes, so every structural
// failure here is tampering (or format drift, which must also refuse to
// load) — there is no torn classification for segments: a complete,
// MAC-valid manifest implies its segments were fully written and synced
// before the manifest existed.
func decodeSegment(buf []byte, wantCkpt uint64, wantName string) (*TableImage, error) {
	d := segDecoder{buf: buf}
	magic, err := d.take(len(segMagic))
	if err != nil {
		return nil, err
	}
	if string(magic) != string(segMagic) {
		return nil, fmt.Errorf("%w: bad segment magic %q", ErrTamper, magic)
	}
	ckpt, err := d.u64()
	if err != nil {
		return nil, err
	}
	if ckpt != wantCkpt {
		return nil, fmt.Errorf("%w: segment carries checkpoint %d, manifest says %d", ErrTamper, ckpt, wantCkpt)
	}
	img := &TableImage{}
	if img.Name, err = d.str(); err != nil {
		return nil, err
	}
	if wantName != "" && img.Name != wantName {
		return nil, fmt.Errorf("%w: segment for table %q where %q expected", ErrTamper, img.Name, wantName)
	}
	nCols, err := d.u16()
	if err != nil {
		return nil, err
	}
	img.Columns = make([]record.Column, nCols)
	for i := range img.Columns {
		if img.Columns[i].Name, err = d.str(); err != nil {
			return nil, err
		}
		tb, err := d.byte()
		if err != nil {
			return nil, err
		}
		if record.Type(tb) > record.TypeBool {
			return nil, fmt.Errorf("%w: segment column type %d", ErrTamper, tb)
		}
		img.Columns[i].Type = record.Type(tb)
	}
	pk, err := d.u16()
	if err != nil {
		return nil, err
	}
	img.PrimaryKey = int(pk)
	if img.PrimaryKey >= len(img.Columns) {
		return nil, fmt.Errorf("%w: segment primary key column %d of %d", ErrTamper, img.PrimaryKey, len(img.Columns))
	}
	nChains, err := d.u16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(nChains); i++ {
		c, err := d.u16()
		if err != nil {
			return nil, err
		}
		if int(c) >= len(img.Columns) {
			return nil, fmt.Errorf("%w: segment chain column %d of %d", ErrTamper, c, len(img.Columns))
		}
		img.ChainColumns = append(img.ChainColumns, int(c))
	}
	nRows, err := d.u64()
	if err != nil {
		return nil, err
	}
	if nRows > uint64(len(d.buf)-d.off) {
		// Even zero-length rows need a length prefix each; a row count
		// beyond the remaining bytes is structurally impossible.
		return nil, fmt.Errorf("%w: segment claims %d rows in %d bytes", ErrTamper, nRows, len(d.buf)-d.off)
	}
	img.Rows = make([]record.Tuple, 0, nRows)
	for i := uint64(0); i < nRows; i++ {
		rl, err := d.u32()
		if err != nil {
			return nil, err
		}
		rb, err := d.take(int(rl))
		if err != nil {
			return nil, err
		}
		rec, err := record.Decode(rb)
		if err != nil {
			return nil, fmt.Errorf("%w: segment row %d: %v", ErrTamper, i, err)
		}
		if rec.IsSentinel() {
			return nil, fmt.Errorf("%w: segment row %d is a sentinel", ErrTamper, i)
		}
		img.Rows = append(img.Rows, rec.Data)
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing segment bytes", ErrTamper, len(d.buf)-d.off)
	}
	return img, nil
}

// segMAC authenticates a whole segment byte stream.
func segMAC(key, content []byte) [macSize]byte {
	h := hmac.New(sha256.New, key)
	h.Write([]byte(macSegment))
	h.Write(content)
	var out [macSize]byte
	h.Sum(out[:0])
	return out
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// segDecoder is a bounds-checked cursor whose every failure is typed
// ErrTamper (see decodeSegment on why segments have no torn class).
type segDecoder struct {
	buf []byte
	off int
}

func (d *segDecoder) take(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.buf) || d.off+n < d.off {
		return nil, fmt.Errorf("%w: truncated segment (need %d bytes at %d of %d)", ErrTamper, n, d.off, len(d.buf))
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *segDecoder) byte() (byte, error) {
	b, err := d.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *segDecoder) u16() (uint16, error) {
	b, err := d.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (d *segDecoder) u32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *segDecoder) u64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (d *segDecoder) str() (string, error) {
	n, err := d.u16()
	if err != nil {
		return "", err
	}
	b, err := d.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}
