package wal

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// keyFile holds the log's MAC key, standing in for SGX sealing: a real
// deployment seals the key to the enclave identity so only the attested
// code can produce or check these MACs. Tampering with the key file makes
// every MAC check fail, which lands in quarantine like any other tamper.
const keyFile = "sealed.key"

// keySize is the sealed MAC key length.
const keySize = 32

// Recovery is what Open found on disk, verified and ready to replay:
// the newest admissible checkpoint's table images (nil when none) and
// the authenticated WAL tail recorded after it.
type Recovery struct {
	// CheckpointID is the admitted checkpoint (0 = none: replaying from
	// the genesis WAL).
	CheckpointID uint64
	// Checkpoint holds the admitted checkpoint's tables, nil when none.
	Checkpoint []*TableImage
	// Tail is the verified WAL record suffix to replay over the
	// checkpoint, in sequence order.
	Tail []Record
	// TornBytes counts trailing WAL bytes dropped as a crash-torn suffix
	// (diagnostic; at most one unacked record plus fragments).
	TornBytes int64
}

// Log is an open authenticated WAL: an append handle positioned after the
// last verified record, holding the chain state (previous MAC, next
// sequence number) and the checkpoint naming state.
type Log struct {
	dir string
	key []byte

	mu      sync.Mutex
	f       *os.File
	path    string
	ckptID  uint64
	prevMAC [macSize]byte
	nextSeq uint64

	// Group-commit state (see group.go). gcDelay <= 0 keeps the serial
	// one-fsync-per-record path.
	gcDelay      time.Duration
	gcMaxBatch   int
	gbuf         []byte        // encoded records of the open group
	gwaiters     []chan error  // one per enqueued record, queue order
	leaderActive bool          // the open group already has a leader
	full         chan struct{} // early-flush signal (buffered 1)
	flushed      chan struct{} // closed when the last drained group hit disk
	failed       error         // sticky write/fsync failure; fences Enqueue
	syncHook     func(*os.File) error
}

func walPath(dir string, ckptID uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", ckptID))
}

func manifestPath(dir string, ckptID uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%016x.manifest", ckptID))
}

func segmentPath(dir string, ckptID uint64, table string) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%016x-%s.seg", ckptID, table))
}

// syncDir flushes directory entries (file creations, renames, deletes) so
// the checkpoint protocol's write ordering holds across power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Some filesystems reject fsync on directories; the ordering guarantee
	// degrades gracefully there, and every content byte is still covered
	// by MACs.
	_ = d.Sync()
	return d.Close()
}

// Open opens (or initialises) a data directory and performs the
// verification half of recovery: choose the newest admissible checkpoint,
// authenticate its segments, and authenticate the WAL tail. It returns
// the append-ready log and the recovery image for the caller to replay.
//
// Errors wrapping ErrTamper mean the durable state was modified by
// something other than a crash; the caller must quarantine, not retry.
// Other errors are environmental (I/O, permissions).
func Open(dir string) (*Log, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating data dir: %w", err)
	}
	manifests, err := listManifestIDs(dir)
	if err != nil {
		return nil, nil, err
	}
	key, freshKey, err := loadOrCreateKey(dir, len(manifests) > 0)
	if err != nil {
		return nil, nil, err
	}

	l := &Log{dir: dir, key: key, full: make(chan struct{}, 1)}
	rec := &Recovery{}

	// Choose the newest admissible checkpoint. A torn manifest is the
	// crash artifact the write ordering allows for the newest checkpoint
	// only; its predecessor's files still exist (they are deleted only
	// after the new WAL file is created), so fall back once. A tampered
	// manifest anywhere quarantines.
	var manifest *Manifest
	for i := len(manifests) - 1; i >= 0; i-- {
		id := manifests[i]
		buf, err := os.ReadFile(manifestPath(dir, id))
		if err != nil {
			return nil, nil, fmt.Errorf("wal: reading manifest %d: %w", id, err)
		}
		m, err := decodeManifest(buf, key)
		if errors.Is(err, ErrTorn) {
			if i == len(manifests)-1 {
				continue // crash mid-manifest-write; previous checkpoint rules
			}
			return nil, nil, fmt.Errorf("%w: non-newest manifest %d torn: %v", ErrTamper, id, err)
		}
		if err != nil {
			return nil, nil, err
		}
		if m.CheckpointID != id {
			return nil, nil, fmt.Errorf("%w: manifest file %d carries checkpoint ID %d", ErrTamper, id, m.CheckpointID)
		}
		manifest = m
		break
	}

	baseSeq := uint64(0)
	if manifest != nil {
		rec.CheckpointID = manifest.CheckpointID
		baseSeq = manifest.BaseSeq
		for _, e := range manifest.Segments {
			img, err := loadSegment(dir, manifest.CheckpointID, e, key)
			if err != nil {
				return nil, nil, err
			}
			rec.Checkpoint = append(rec.Checkpoint, img)
		}
	}

	// Open the checkpoint's WAL. Absence is a crash artifact only while
	// the predecessor generation still exists (rotation deletes old files
	// strictly after creating the new WAL); with the old generation gone,
	// a missing WAL is a deleted log — tampering.
	l.ckptID = rec.CheckpointID
	l.path = walPath(dir, l.ckptID)
	walBuf, err := os.ReadFile(l.path)
	switch {
	case err == nil:
		torn, err := l.verifyTail(walBuf, baseSeq, rec)
		if err != nil {
			return nil, nil, err
		}
		if torn > 0 {
			// Drop the torn suffix so new appends chain off the last good
			// record at a clean boundary.
			if err := os.Truncate(l.path, int64(len(walBuf))-torn); err != nil {
				return nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			rec.TornBytes = torn
		}
	case os.IsNotExist(err):
		older := rec.CheckpointID == 0 && manifest == nil && freshKey
		if !older {
			older = rec.CheckpointID > 0 && generationExists(dir, manifests, rec.CheckpointID)
		}
		if !older {
			return nil, nil, fmt.Errorf("%w: WAL %s missing with no prior generation present", ErrTamper, filepath.Base(l.path))
		}
		if err := l.createWAL(baseSeq); err != nil {
			return nil, nil, err
		}
		l.nextSeq = baseSeq
	default:
		return nil, nil, fmt.Errorf("wal: reading %s: %w", l.path, err)
	}

	f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening for append: %w", err)
	}
	l.f = f
	return l, rec, nil
}

// loadOrCreateKey reads the sealed key, creating one when the directory is
// genuinely fresh. A missing key beside existing checkpoints means the
// sealed state was destroyed — quarantine.
func loadOrCreateKey(dir string, haveManifests bool) (key []byte, fresh bool, err error) {
	path := filepath.Join(dir, keyFile)
	key, err = os.ReadFile(path)
	if err == nil {
		if len(key) != keySize {
			return nil, false, fmt.Errorf("%w: sealed key is %d bytes, want %d", ErrTamper, len(key), keySize)
		}
		return key, false, nil
	}
	if !os.IsNotExist(err) {
		return nil, false, fmt.Errorf("wal: reading sealed key: %w", err)
	}
	if haveManifests {
		return nil, false, fmt.Errorf("%w: checkpoints present but sealed key missing", ErrTamper)
	}
	key = make([]byte, keySize)
	if _, err := rand.Read(key); err != nil {
		return nil, false, fmt.Errorf("wal: generating sealed key: %w", err)
	}
	if err := writeFileSync(path, key); err != nil {
		return nil, false, err
	}
	if err := syncDir(dir); err != nil {
		return nil, false, err
	}
	return key, true, nil
}

// verifyTail authenticates a WAL image: header, then the record chain.
// It appends verified records to rec.Tail, leaves the log positioned
// after the last good record, and returns how many trailing bytes to
// drop as crash-torn.
func (l *Log) verifyTail(buf []byte, wantBase uint64, rec *Recovery) (torn int64, err error) {
	ckptID, baseSeq, genesis, err := decodeWALHeader(buf, l.key)
	if errors.Is(err, ErrTorn) {
		// The header is written and synced before any record is acked, so
		// a short header means the crash hit initialisation: rebuild the
		// file. (Content after a torn header is impossible by that
		// ordering, so any such bytes die with the rebuild.)
		if err := l.createWAL(wantBase); err != nil {
			return 0, err
		}
		l.nextSeq = wantBase
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if ckptID != l.ckptID || baseSeq != wantBase {
		return 0, fmt.Errorf("%w: WAL header (ckpt %d, base %d) does not match checkpoint (ckpt %d, base %d)",
			ErrTamper, ckptID, baseSeq, l.ckptID, wantBase)
	}
	l.prevMAC = genesis
	l.nextSeq = baseSeq
	off := walHeaderSize
	for off < len(buf) {
		r, mac, n, err := decodeRecord(buf[off:], l.key, l.prevMAC, l.nextSeq)
		if errors.Is(err, ErrTorn) {
			return int64(len(buf) - off), nil
		}
		if err != nil {
			return 0, fmt.Errorf("%s at byte %d: %w", filepath.Base(l.path), off, err)
		}
		rec.Tail = append(rec.Tail, r)
		l.prevMAC = mac
		l.nextSeq = r.Seq + 1
		off += n
	}
	return 0, nil
}

// createWAL writes a fresh WAL file for the log's current checkpoint and
// installs its header MAC as the chain genesis.
func (l *Log) createWAL(baseSeq uint64) error {
	hdr := encodeWALHeader(l.key, l.ckptID, baseSeq)
	if err := writeFileSync(l.path, hdr); err != nil {
		return err
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.prevMAC = headerMAC(l.key, l.ckptID, baseSeq)
	return nil
}

// loadSegment reads, authenticates and decodes one checkpoint segment.
func loadSegment(dir string, ckptID uint64, e SegmentEntry, key []byte) (*TableImage, error) {
	path := segmentPath(dir, ckptID, e.Table)
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		// Segments are written and synced before their manifest; a missing
		// segment under a valid manifest was deleted afterwards.
		return nil, fmt.Errorf("%w: segment %s missing", ErrTamper, filepath.Base(path))
	}
	if err != nil {
		return nil, fmt.Errorf("wal: reading segment: %w", err)
	}
	if uint64(len(buf)) != e.Size {
		return nil, fmt.Errorf("%w: segment %s is %d bytes, manifest says %d", ErrTamper, filepath.Base(path), len(buf), e.Size)
	}
	mac := segMAC(key, buf)
	if mac != e.MAC {
		return nil, fmt.Errorf("%w: segment %s MAC mismatch", ErrTamper, filepath.Base(path))
	}
	return decodeSegment(buf, ckptID, e.Table)
}

// generationExists reports whether any file of checkpoint generation
// ckptID-1 (manifest or WAL) is still on disk.
func generationExists(dir string, manifests []uint64, ckptID uint64) bool {
	prev := ckptID - 1
	for _, id := range manifests {
		if id == prev {
			return true
		}
	}
	_, err := os.Stat(walPath(dir, prev))
	return err == nil
}

// listManifestIDs returns every ckpt-*.manifest ID in ascending order.
func listManifestIDs(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing data dir: %w", err)
	}
	var ids []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".manifest") {
			continue
		}
		hexID := strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".manifest")
		id, err := strconv.ParseUint(hexID, 16, 64)
		if err != nil {
			continue // foreign file; recovery keys off parseable names only
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// NextSeq returns the sequence number the next Append will use.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Path returns the current WAL file path (crash harnesses cut the log
// here).
func (l *Log) Path() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.path
}

// Dir returns the data directory.
func (l *Log) Dir() string { return l.dir }

// CheckpointID returns the current checkpoint generation (0 = none yet).
func (l *Log) CheckpointID() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ckptID
}

// Checkpoint freezes the given verified table images into a new
// checkpoint generation and rotates the WAL. The caller must guarantee
// the images are a consistent snapshot (no concurrent DML; core holds
// its statement gate exclusively). Write ordering, on which every
// recovery fallback rule rests:
//
//  1. write + fsync every segment, fsync the directory;
//  2. write + fsync the manifest (the commit point), fsync the directory;
//  3. create + fsync the new WAL file, fsync the directory;
//  4. delete the previous generation's WAL, manifest and segments.
//
// A crash before 2 leaves orphan segments the next generation overwrites;
// a crash between 2 and 3 recovers to the new checkpoint with an empty
// tail (the old WAL's records are all captured by the segments); a crash
// during 4 leaves harmless old files that the fallback scan ignores.
func (l *Log) Checkpoint(tables []*TableImage) error {
	// Settle any pending group before the rotation swaps the file handle.
	// Under core's exclusive statement gate no group can be in flight here;
	// this covers direct wal-level callers.
	l.drainPending()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: log closed")
	}
	newID := l.ckptID + 1
	m := &Manifest{CheckpointID: newID, BaseSeq: l.nextSeq}
	for _, img := range tables {
		buf, err := encodeSegment(img, newID)
		if err != nil {
			return err
		}
		if err := writeFileSync(segmentPath(l.dir, newID, img.Name), buf); err != nil {
			return err
		}
		m.Segments = append(m.Segments, SegmentEntry{
			Table: img.Name,
			Size:  uint64(len(buf)),
			MAC:   segMAC(l.key, buf),
		})
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	if err := writeFileSync(manifestPath(l.dir, newID), encodeManifest(m, l.key)); err != nil {
		return err
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}

	// The new checkpoint is committed; swing the log over to its WAL.
	oldID, oldTables := l.ckptID, tableNames(tables)
	l.ckptID = newID
	l.path = walPath(l.dir, newID)
	if err := l.createWAL(l.nextSeq); err != nil {
		return err
	}
	f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening rotated WAL: %w", err)
	}
	l.f.Close()
	l.f = f

	// Retire the previous generation. Failures here are cosmetic (extra
	// files), never a durability loss.
	os.Remove(walPath(l.dir, oldID))
	os.Remove(manifestPath(l.dir, oldID))
	for _, name := range oldTables {
		os.Remove(segmentPath(l.dir, oldID, name))
	}
	// Also sweep segments of tables that existed at the previous
	// checkpoint but were since dropped.
	if entries, err := os.ReadDir(l.dir); err == nil {
		prefix := fmt.Sprintf("ckpt-%016x-", oldID)
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), prefix) && strings.HasSuffix(e.Name(), ".seg") {
				os.Remove(filepath.Join(l.dir, e.Name()))
			}
		}
	}
	_ = syncDir(l.dir)
	return nil
}

func tableNames(tables []*TableImage) []string {
	names := make([]string, len(tables))
	for i, t := range tables {
		names[i] = t.Name
	}
	return names
}

// Close flushes any pending group, syncs and closes the append handle.
func (l *Log) Close() error {
	l.drainPending()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Boundaries scans a WAL image structurally — length prefixes only, no
// MAC verification — and returns the byte offset of every record
// boundary, starting at the end of the header. Crash harnesses use it to
// derive cut points for logs written by group commit, where acks no
// longer land on one-record file-size increments.
func Boundaries(buf []byte) []int64 {
	if len(buf) < walHeaderSize {
		return nil
	}
	off := walHeaderSize
	offs := []int64{int64(off)}
	for off+4 <= len(buf) {
		n := int(binary.LittleEndian.Uint32(buf[off:]))
		if n < minRecordLen || n > MaxRecordLen || off+4+n > len(buf) {
			break
		}
		off += 4 + n
		offs = append(offs, int64(off))
	}
	return offs
}

// writeFileSync writes path atomically enough for the protocol: content,
// then fsync, before the handle closes.
func writeFileSync(path string, content []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Write(content); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing %s: %w", filepath.Base(path), err)
	}
	return f.Close()
}
