package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"veridb/internal/record"
)

// openT opens a log and fails the test on environmental errors.
func openT(t *testing.T, dir string) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, rec
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openT(t, dir)
	if len(rec.Tail) != 0 || rec.Checkpoint != nil {
		t.Fatalf("fresh dir recovered %d records, %d tables", len(rec.Tail), len(rec.Checkpoint))
	}
	stmts := []string{"CREATE TABLE t (id INT PRIMARY KEY)", "INSERT INTO t VALUES (1)", "INSERT INTO t VALUES (2)"}
	for i, s := range stmts {
		seq, err := l.Append(RecStmt, []byte(s))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2 := openT(t, dir)
	defer l2.Close()
	if len(rec2.Tail) != len(stmts) {
		t.Fatalf("recovered %d records, want %d", len(rec2.Tail), len(stmts))
	}
	for i, r := range rec2.Tail {
		if r.Seq != uint64(i) || r.Type != RecStmt || string(r.Payload) != stmts[i] {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	if rec2.TornBytes != 0 {
		t.Fatalf("clean log reported %d torn bytes", rec2.TornBytes)
	}
	if got := l2.NextSeq(); got != uint64(len(stmts)) {
		t.Fatalf("NextSeq = %d, want %d", got, len(stmts))
	}
}

// TestTornTailTruncation: cutting the log anywhere inside the last record
// recovers the full prefix before it and drops only the torn suffix, and
// appends afterwards continue the chain cleanly.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	var sizes []int64
	for i := 0; i < 5; i++ {
		if _, err := l.Append(RecStmt, []byte("stmt payload with some length")); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(l.Path())
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, fi.Size())
	}
	path := l.Path()
	l.Close()

	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Every cut from "just after record 3" to "just before record 5
	// completes" must recover exactly 4 records... and cuts inside record
	// 4's extent recover 3, etc. Sweep every byte boundary.
	for cut := int64(walHeaderSize); cut <= sizes[len(sizes)-1]; cut++ {
		if err := os.WriteFile(path, pristine[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, rec := openT(t, dir)
		want := 0
		for _, s := range sizes {
			if cut >= s {
				want++
			}
		}
		if len(rec.Tail) != want {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, len(rec.Tail), want)
		}
		// The torn suffix must be gone from disk so new appends start at a
		// clean chain boundary.
		if _, err := l2.Append(RecStmt, []byte("after crash")); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		l2.Close()
		l3, rec3 := openT(t, dir)
		if len(rec3.Tail) != want+1 {
			t.Fatalf("cut at %d: second recovery got %d records, want %d", cut, len(rec3.Tail), want+1)
		}
		l3.Close()
	}
}

// TestMidLogTamperQuarantines: any bit flip with intact records behind it
// must be classified tamper, never silently truncated.
func TestMidLogTamperQuarantines(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	for i := 0; i < 4; i++ {
		if _, err := l.Append(RecStmt, []byte("statement number x")); err != nil {
			t.Fatal(err)
		}
	}
	path := l.Path()
	fi, _ := os.Stat(path)
	firstRecordEnd := fi.Size() / 4 // well inside the first half of the log
	l.Close()

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[firstRecordEnd] ^= 0x01
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir)
	if !errors.Is(err, ErrTamper) {
		t.Fatalf("mid-log flip: got %v, want ErrTamper", err)
	}
}

// TestHeaderTamperQuarantines: the header MAC binds checkpoint ID and
// base sequence; flipping any header byte is tamper.
func TestHeaderTamperQuarantines(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	l.Append(RecStmt, []byte("x"))
	path := l.Path()
	l.Close()
	buf, _ := os.ReadFile(path)
	buf[8] ^= 0xFF // inside the checkpoint-ID field
	os.WriteFile(path, buf, 0o644)
	_, _, err := Open(dir)
	if !errors.Is(err, ErrTamper) {
		t.Fatalf("header flip: got %v, want ErrTamper", err)
	}
}

// TestSealedKeyTamper: a modified or missing sealed key makes the state
// unverifiable — tamper, not fallback.
func TestSealedKeyTamper(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	l.Append(RecStmt, []byte("x"))
	l.Close()

	keyPath := filepath.Join(dir, keyFile)
	key, _ := os.ReadFile(keyPath)
	key[0] ^= 0xFF
	os.WriteFile(keyPath, key, 0o644)
	if _, _, err := Open(dir); !errors.Is(err, ErrTamper) {
		t.Fatalf("flipped key: got %v, want ErrTamper", err)
	}
}

// TestWALDeletionQuarantines: deleting the only WAL of an initialised
// directory is a wipe attempt, not a crash artifact.
func TestWALDeletionQuarantines(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	l.Append(RecStmt, []byte("x"))
	path := l.Path()
	l.Close()
	os.Remove(path)
	if _, _, err := Open(dir); !errors.Is(err, ErrTamper) {
		t.Fatalf("deleted WAL: got %v, want ErrTamper", err)
	}
}

func testImage() *TableImage {
	return &TableImage{
		Name: "kv",
		Columns: []record.Column{
			{Name: "k", Type: record.TypeInt},
			{Name: "v", Type: record.TypeText},
		},
		PrimaryKey:   0,
		ChainColumns: []int{1},
		Rows: []record.Tuple{
			{record.Int(1), record.Text("one")},
			{record.Int(2), record.Text("two")},
		},
	}
}

// TestCheckpointRotation: a checkpoint captures the images, rotates the
// WAL, retires the old generation, and recovery loads segments plus the
// post-checkpoint tail only.
func TestCheckpointRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	l.Append(RecStmt, []byte("pre-checkpoint 1"))
	l.Append(RecStmt, []byte("pre-checkpoint 2"))
	oldWAL := l.Path()
	if err := l.Checkpoint([]*TableImage{testImage()}); err != nil {
		t.Fatal(err)
	}
	if l.CheckpointID() != 1 {
		t.Fatalf("checkpoint ID = %d", l.CheckpointID())
	}
	if _, err := os.Stat(oldWAL); !os.IsNotExist(err) {
		t.Fatalf("old WAL still present after rotation: %v", err)
	}
	if _, err := l.Append(RecStmt, []byte("post-checkpoint")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, rec := openT(t, dir)
	defer l2.Close()
	if rec.CheckpointID != 1 || len(rec.Checkpoint) != 1 {
		t.Fatalf("recovered ckpt %d with %d tables", rec.CheckpointID, len(rec.Checkpoint))
	}
	img := rec.Checkpoint[0]
	if img.Name != "kv" || len(img.Rows) != 2 || len(img.Columns) != 2 || img.ChainColumns[0] != 1 {
		t.Fatalf("recovered image %+v", img)
	}
	if len(rec.Tail) != 1 || string(rec.Tail[0].Payload) != "post-checkpoint" {
		t.Fatalf("recovered tail %+v", rec.Tail)
	}
	// Sequence numbers continue across the rotation.
	if rec.Tail[0].Seq != 2 {
		t.Fatalf("post-checkpoint record has seq %d, want 2", rec.Tail[0].Seq)
	}
}

// TestSegmentTamperQuarantines: flipping any byte of a segment breaks the
// manifest's MAC over it.
func TestSegmentTamperQuarantines(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	if err := l.Checkpoint([]*TableImage{testImage()}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	seg := segmentPath(dir, 1, "kv")
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, len(buf) / 2, len(buf) - 1} {
		tampered := append([]byte(nil), buf...)
		tampered[off] ^= 0x10
		os.WriteFile(seg, tampered, 0o644)
		if _, _, err := Open(dir); !errors.Is(err, ErrTamper) {
			t.Fatalf("segment flip at %d: got %v, want ErrTamper", off, err)
		}
	}
	os.WriteFile(seg, buf, 0o644)
	l2, _ := openT(t, dir) // pristine bytes restore service
	l2.Close()
}

// TestManifestTornFallsBack: a crash mid-manifest-write falls back to the
// previous checkpoint generation; a MAC-invalid complete manifest
// quarantines instead.
func TestManifestTornFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	l.Append(RecStmt, []byte("gen0 record"))
	if err := l.Checkpoint([]*TableImage{testImage()}); err != nil {
		t.Fatal(err)
	}
	l.Append(RecStmt, []byte("gen1 record"))
	l.Close()

	// Simulate checkpoint 2 crashing mid-manifest: segments (maybe) and a
	// truncated manifest exist, wal-2 does not, generation 1 still there.
	full := encodeManifest(&Manifest{CheckpointID: 2, BaseSeq: 9}, readKey(t, dir))
	os.WriteFile(manifestPath(dir, 2), full[:len(full)-7], 0o644)

	l2, rec := openT(t, dir)
	if rec.CheckpointID != 1 || len(rec.Tail) != 1 || string(rec.Tail[0].Payload) != "gen1 record" {
		t.Fatalf("torn newest manifest: recovered ckpt %d tail %+v", rec.CheckpointID, rec.Tail)
	}
	l2.Close()

	// A complete manifest with a bad MAC is tamper, no fallback.
	bad := append([]byte(nil), full...)
	bad[len(bad)-1] ^= 0x01
	os.WriteFile(manifestPath(dir, 2), bad, 0o644)
	if _, _, err := Open(dir); !errors.Is(err, ErrTamper) {
		t.Fatalf("bad-MAC manifest: got %v, want ErrTamper", err)
	}
}

// TestCheckpointCrashBeforeWALCreate: manifest committed but the rotated
// WAL never created — recovery admits the new checkpoint with an empty
// tail (the old WAL's records are all inside the segments).
func TestCheckpointCrashBeforeWALCreate(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	l.Append(RecStmt, []byte("captured by checkpoint"))
	if err := l.Checkpoint([]*TableImage{testImage()}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Rewind to "crash between manifest write and wal-1 creation": delete
	// wal-1, restore wal-0 (its deletion hadn't happened yet either).
	os.Remove(walPath(dir, 1))
	os.WriteFile(walPath(dir, 0), encodeWALHeader(readKey(t, dir), 0, 0), 0o644)

	l2, rec := openT(t, dir)
	defer l2.Close()
	if rec.CheckpointID != 1 || len(rec.Tail) != 0 {
		t.Fatalf("recovered ckpt %d with %d tail records, want ckpt 1, empty tail", rec.CheckpointID, len(rec.Tail))
	}
}

func readKey(t *testing.T, dir string) []byte {
	t.Helper()
	key, err := os.ReadFile(filepath.Join(dir, keyFile))
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestSpliceAcrossLogsQuarantines: moving an authentic record from one
// database's log into another's breaks the chain (different keys), and
// moving a record within one log breaks prevMAC chaining.
func TestSpliceAcrossLogsQuarantines(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	l.Append(RecStmt, []byte("first"))
	sizeAfter1, _ := os.Stat(l.Path())
	l.Append(RecStmt, []byte("second"))
	path := l.Path()
	l.Close()

	buf, _ := os.ReadFile(path)
	rec1 := append([]byte(nil), buf[walHeaderSize:sizeAfter1.Size()]...)
	// Duplicate record 1 after record 2: authentic bytes, wrong position.
	spliced := append(append([]byte(nil), buf...), rec1...)
	os.WriteFile(path, spliced, 0o644)
	// The duplicate sits at EOF with a chain-invalid MAC, so positional
	// classification may call it torn (drop it) — stricter tamper is also
	// fine. What is NOT fine is the duplicate entering the replay tail.
	l2, rec, err := Open(dir)
	if errors.Is(err, ErrTamper) {
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rec.Tail) != 2 {
		t.Fatalf("spliced log replayed %d records, want 2", len(rec.Tail))
	}
	for i, r := range rec.Tail {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}

	// Splice a duplicate in the MIDDLE (authentic record 1 twice, then
	// record 2): now there are intact-looking bytes behind the break, and
	// the verdict must be tamper.
	mid := append([]byte(nil), buf[:sizeAfter1.Size()]...)
	mid = append(mid, rec1...)
	mid = append(mid, buf[sizeAfter1.Size():]...)
	os.WriteFile(path, mid, 0o644)
	if _, _, err := Open(dir); !errors.Is(err, ErrTamper) {
		t.Fatalf("mid-log splice: got %v, want ErrTamper", err)
	}
}
