// Type-specific payload codecs for the binary protocol. Every codec uses
// the same field primitive as the MAC layer (u32 length prefix + bytes,
// little-endian fixed-width integers), and response rows travel as
// record.Encode images — the exact bytes portal.ResponseDigest folds into
// the response MAC — so a client can rebuild the typed tuples and verify
// the endorsement bit-for-bit. That is a capability the legacy JSON
// protocol lacks: it renders rows to strings, erasing the types the digest
// covers.
package wire

import (
	"encoding/binary"
	"fmt"

	"veridb/internal/enclave"
	"veridb/internal/portal"
	"veridb/internal/record"
)

// Field primitives.

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendBytes(b, p []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// reader consumes payload fields with bounds checking; every failure is
// typed ErrTruncated (ran out of bytes) or ErrBadPayload (inconsistent
// structure).
type reader struct {
	b   []byte
	off int
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("%w: u32 at offset %d of %d", ErrTruncated, r.off, len(r.b))
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, fmt.Errorf("%w: u64 at offset %d of %d", ErrTruncated, r.off, len(r.b))
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("%w: byte at offset %d of %d", ErrTruncated, r.off, len(r.b))
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint32(len(r.b)-r.off) < n {
		return nil, fmt.Errorf("%w: field of %d bytes with %d remaining", ErrTruncated, n, len(r.b)-r.off)
	}
	v := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return v, nil
}

func (r *reader) str() (string, error) {
	b, err := r.bytes()
	return string(b), err
}

func (r *reader) done() error {
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(r.b)-r.off)
	}
	return nil
}

// EncodeQuery encodes an authenticated query request. The qid travels in
// the frame header, not the payload; the MAC bytes are exactly
// portal.SignRequestTimeout's output, unchanged from the JSON protocol.
func EncodeQuery(req portal.Request) []byte {
	b := make([]byte, 0, 4+len(req.ClientID)+4+len(req.Query)+8+4+len(req.MAC))
	b = appendString(b, req.ClientID)
	b = appendString(b, req.Query)
	b = appendU64(b, req.TimeoutMS)
	b = appendBytes(b, req.MAC)
	return b
}

// DecodeQuery decodes a TQuery payload; qid comes from the frame header.
func DecodeQuery(qid uint64, payload []byte) (portal.Request, error) {
	r := reader{b: payload}
	req := portal.Request{QID: qid}
	var err error
	if req.ClientID, err = r.str(); err != nil {
		return portal.Request{}, err
	}
	if req.Query, err = r.str(); err != nil {
		return portal.Request{}, err
	}
	if req.TimeoutMS, err = r.u64(); err != nil {
		return portal.Request{}, err
	}
	mac, err := r.bytes()
	if err != nil {
		return portal.Request{}, err
	}
	if len(mac) > 0 {
		req.MAC = append([]byte(nil), mac...)
	}
	if err := r.done(); err != nil {
		return portal.Request{}, err
	}
	return req, nil
}

// EncodeResult encodes a sequenced, endorsed response. Rows are
// record.Encode images — the same bytes the response digest covers — so
// DecodeResult rebuilds tuples the client can MAC-verify.
func EncodeResult(resp *portal.Response) []byte {
	var b []byte
	b = appendU64(b, resp.Seq)
	b = appendU64(b, uint64(resp.Affected))
	b = appendString(b, resp.ErrMsg)
	q := byte(0)
	if resp.Quarantined {
		q = 1
	}
	b = append(b, q)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(resp.Columns)))
	for _, c := range resp.Columns {
		b = appendString(b, c)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(resp.Rows)))
	for _, row := range resp.Rows {
		b = appendBytes(b, record.Encode(&record.Record{Data: row}))
	}
	b = appendBytes(b, resp.MAC)
	return b
}

// DecodeResult decodes a TResult payload; qid comes from the frame header.
func DecodeResult(qid uint64, payload []byte) (*portal.Response, error) {
	r := reader{b: payload}
	resp := &portal.Response{QID: qid}
	var err error
	if resp.Seq, err = r.u64(); err != nil {
		return nil, err
	}
	aff, err := r.u64()
	if err != nil {
		return nil, err
	}
	resp.Affected = int(aff)
	if resp.ErrMsg, err = r.str(); err != nil {
		return nil, err
	}
	q, err := r.byte()
	if err != nil {
		return nil, err
	}
	if q > 1 {
		return nil, fmt.Errorf("%w: quarantine flag %d", ErrBadPayload, q)
	}
	resp.Quarantined = q == 1
	ncols, err := r.u32()
	if err != nil {
		return nil, err
	}
	// Each column costs at least its 4-byte length prefix: a count beyond
	// that is a length lie, refused before it becomes an allocation.
	if uint64(ncols)*4 > uint64(len(payload)-r.off) {
		return nil, fmt.Errorf("%w: %d columns in %d bytes", ErrBadPayload, ncols, len(payload)-r.off)
	}
	if ncols > 0 {
		resp.Columns = make([]string, ncols)
		for i := range resp.Columns {
			if resp.Columns[i], err = r.str(); err != nil {
				return nil, err
			}
		}
	}
	nrows, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(nrows)*4 > uint64(len(payload)-r.off) {
		return nil, fmt.Errorf("%w: %d rows in %d bytes", ErrBadPayload, nrows, len(payload)-r.off)
	}
	if nrows > 0 {
		resp.Rows = make([]record.Tuple, nrows)
		for i := range resp.Rows {
			img, err := r.bytes()
			if err != nil {
				return nil, err
			}
			rec, err := record.Decode(img)
			if err != nil {
				return nil, fmt.Errorf("%w: row %d: %v", ErrBadPayload, i, err)
			}
			resp.Rows[i] = rec.Data
		}
	}
	mac, err := r.bytes()
	if err != nil {
		return nil, err
	}
	if len(mac) > 0 {
		resp.MAC = append([]byte(nil), mac...)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return resp, nil
}

// EncodeAttest encodes an attestation request's nonce.
func EncodeAttest(nonce []byte) []byte {
	return appendBytes(nil, nonce)
}

// DecodeAttest decodes a TAttest payload.
func DecodeAttest(payload []byte) ([]byte, error) {
	r := reader{b: payload}
	nonce, err := r.bytes()
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return append([]byte(nil), nonce...), nil
}

// EncodeQuote encodes an attestation quote.
func EncodeQuote(q enclave.Quote) []byte {
	var b []byte
	b = appendBytes(b, q.Measurement[:])
	b = appendBytes(b, q.PublicKey)
	b = appendBytes(b, q.Nonce)
	b = appendBytes(b, q.Signature)
	return b
}

// DecodeQuote decodes a TQuote payload.
func DecodeQuote(payload []byte) (enclave.Quote, error) {
	r := reader{b: payload}
	var q enclave.Quote
	m, err := r.bytes()
	if err != nil {
		return q, err
	}
	if len(m) != len(q.Measurement) {
		return q, fmt.Errorf("%w: measurement of %d bytes", ErrBadPayload, len(m))
	}
	copy(q.Measurement[:], m)
	pub, err := r.bytes()
	if err != nil {
		return q, err
	}
	q.PublicKey = append([]byte(nil), pub...)
	nonce, err := r.bytes()
	if err != nil {
		return q, err
	}
	q.Nonce = append([]byte(nil), nonce...)
	sig, err := r.bytes()
	if err != nil {
		return q, err
	}
	q.Signature = append([]byte(nil), sig...)
	if err := r.done(); err != nil {
		return q, err
	}
	return q, nil
}
