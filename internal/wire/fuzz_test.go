package wire

// Fuzz targets for the decode paths that face untrusted network bytes,
// mirroring the WAL decode fuzzers: arbitrary input yields either a valid
// result or a typed error (ErrBadMagic / ErrBadVersion / ErrBadType /
// ErrTruncated / ErrBadPayload / ErrTooLarge) — never a panic, never an
// untyped error, never an out-of-range consumed count.
//
// Seed corpus lives in testdata/fuzz/<FuzzName>/ (regenerate with
// VERIDB_UPDATE_GOLDEN=1 go test -run TestGenerateFuzzCorpus ./internal/wire).

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"veridb/internal/portal"
	"veridb/internal/record"
)

// fuzzMaxPayload keeps fuzz inputs from tripping the size cap on honestly
// sized frames while still exercising length lies beyond it.
const fuzzMaxPayload = 1 << 16

func typedOrNil(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		return
	}
	for _, want := range []error{ErrBadMagic, ErrBadVersion, ErrBadType, ErrTruncated, ErrBadPayload, ErrTooLarge} {
		if errors.Is(err, want) {
			return
		}
	}
	t.Fatalf("untyped decode error: %v", err)
}

// seedFrames is the shared seed set: one valid frame of each type, plus
// header mutations, truncations and length lies.
func seedFrames() [][]byte {
	req := portal.Request{ClientID: "alice", QID: 7, Query: "SELECT 1", TimeoutMS: 250, MAC: bytes.Repeat([]byte{0x5A}, 32)}
	resp := &portal.Response{
		QID: 7, Seq: 3, Columns: []string{"a"},
		Rows: []record.Tuple{{record.Int(42)}, {record.Text("x")}},
		MAC:  bytes.Repeat([]byte{0x6B}, 32),
	}
	valid := [][]byte{
		AppendFrame(nil, TQuery, 7, EncodeQuery(req)),
		AppendFrame(nil, TResult, 7, EncodeResult(resp)),
		AppendFrame(nil, TAttest, 1, EncodeAttest([]byte("nonce"))),
		AppendFrame(nil, THealth, 0, nil),
		AppendFrame(nil, TError, 9, []byte("wire: example refusal")),
	}
	seeds := append([][]byte(nil), valid...)
	base := valid[0]
	for i := 0; i < HeaderSize; i++ { // header mutation, byte by byte
		m := append([]byte(nil), base...)
		m[i] ^= 0xFF
		seeds = append(seeds, m)
	}
	seeds = append(seeds,
		base[:HeaderSize/2], // mid-header truncation
		base[:len(base)-3],  // mid-payload truncation
		[]byte{},
		[]byte{'{'},
	)
	// Length lie: header claims more payload than follows.
	lie := append([]byte(nil), base...)
	lie[12] = 0xFF
	lie[13] = 0xFF
	seeds = append(seeds, lie)
	// Length lie past the cap.
	huge := append([]byte(nil), base...)
	huge[14] = 0xFF
	seeds = append(seeds, huge)
	return seeds
}

func FuzzFrameDecode(f *testing.F) {
	for _, s := range seedFrames() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data, fuzzMaxPayload)
		typedOrNil(t, err)
		if err != nil {
			return
		}
		if n < HeaderSize || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if !validType(fr.Type) {
			t.Fatalf("accepted frame with invalid type %d", fr.Type)
		}
		if len(fr.Payload) > fuzzMaxPayload {
			t.Fatalf("accepted %d-byte payload past the %d cap", len(fr.Payload), fuzzMaxPayload)
		}
		// The streaming reader must agree with the in-place decoder.
		sf, serr := ReadFrame(bytes.NewReader(data), fuzzMaxPayload)
		if serr != nil {
			t.Fatalf("DecodeFrame accepted what ReadFrame refused: %v", serr)
		}
		if sf.Type != fr.Type || sf.QID != fr.QID || !bytes.Equal(sf.Payload, fr.Payload) {
			t.Fatal("ReadFrame and DecodeFrame disagree")
		}
	})
}

func FuzzQueryDecode(f *testing.F) {
	req := portal.Request{ClientID: "alice", QID: 7, Query: "SELECT 1", TimeoutMS: 250, MAC: bytes.Repeat([]byte{0x5A}, 32)}
	enc := EncodeQuery(req)
	f.Add(enc)
	f.Add(enc[:len(enc)-5])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 24))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeQuery(1, data)
		typedOrNil(t, err)
		if err != nil {
			return
		}
		// A decoded request re-encodes to the identical bytes: the codec
		// admits exactly one wire image per request.
		if !bytes.Equal(EncodeQuery(got), data) {
			t.Fatalf("decode/encode not bijective for %x", data)
		}
	})
}

func FuzzResultDecode(f *testing.F) {
	resp := &portal.Response{
		QID: 7, Seq: 3, Affected: 2, ErrMsg: "",
		Columns: []string{"a", "b"},
		Rows:    []record.Tuple{{record.Int(1), record.Text("x")}},
		MAC:     bytes.Repeat([]byte{0x6B}, 32),
	}
	enc := EncodeResult(resp)
	f.Add(enc)
	f.Add(enc[:len(enc)-7])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeResult(1, data)
		typedOrNil(t, err)
		if err != nil {
			return
		}
		if got == nil {
			t.Fatal("nil response without error")
		}
	})
}

// TestGenerateFuzzCorpus writes the seed corpus under testdata/fuzz so the
// seeds are exercised by plain `go test` runs too (Go includes committed
// corpus files automatically). Run with VERIDB_UPDATE_GOLDEN=1 to
// regenerate.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("VERIDB_UPDATE_GOLDEN") == "" {
		t.Skip("set VERIDB_UPDATE_GOLDEN=1 to regenerate the fuzz corpus")
	}
	write := func(fuzzName string, seeds [][]byte) {
		dir := filepath.Join("testdata", "fuzz", fuzzName)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
			name := filepath.Join(dir, fmt.Sprintf("seed-%03d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	write("FuzzFrameDecode", seedFrames())

	req := portal.Request{ClientID: "alice", QID: 7, Query: "SELECT 1", TimeoutMS: 250, MAC: bytes.Repeat([]byte{0x5A}, 32)}
	qenc := EncodeQuery(req)
	write("FuzzQueryDecode", [][]byte{qenc, qenc[:len(qenc)-5], {}, bytes.Repeat([]byte{0xFF}, 24)})

	resp := &portal.Response{
		QID: 7, Seq: 3, Affected: 2,
		Columns: []string{"a", "b"},
		Rows:    []record.Tuple{{record.Int(1), record.Text("x")}},
		MAC:     bytes.Repeat([]byte{0x6B}, 32),
	}
	renc := EncodeResult(resp)
	write("FuzzResultDecode", [][]byte{renc, renc[:len(renc)-7], {}, bytes.Repeat([]byte{0xFF}, 40)})
}
