// Package wire implements VeriDB's length-prefixed binary wire protocol:
// the high-throughput framing that replaces newline-delimited JSON on the
// server→portal→client path. A connection carries independent frames, each
// tagged with a query id (qid), so many requests can be in flight at once
// and responses may return out of order — the portal's response cache and
// the client's qid/MAC reuse already make retries at-most-once, and this
// framing merely exposes that concurrency on the wire.
//
// Frame layout (all integers little-endian):
//
//	offset size field
//	0      2    magic 0xD6 0x42 ("VB" with the high bit set on the V, so
//	            the first byte can never collide with JSON's '{')
//	2      1    protocol version (currently 1)
//	3      1    frame type
//	4      8    qid — matches responses to requests; 0 for connection-level
//	12     4    payload length
//	16     n    payload (type-specific codec, see codec.go)
//
// The MAC scheme is unchanged from the JSON protocol: requests carry the
// exact portal.SignRequestTimeout bytes and responses the exact
// portal.SignResponse bytes, so a key provisioned for one protocol
// authenticates identically on the other.
//
// Decode errors are typed: ErrBadMagic, ErrBadVersion, ErrTruncated,
// ErrBadPayload, and *TooLargeError (wrapping ErrTooLarge) for frames
// beyond the size cap — the same typed refusal the legacy JSON path now
// uses for over-limit lines, replacing the old ad-hoc bufio.ErrTooLong
// handling.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Frame geometry and protocol constants.
const (
	// Magic0 and Magic1 open every frame. Magic0 is what the server's
	// first-byte sniffer keys on to route a connection to the binary path.
	Magic0 = 0xD6
	Magic1 = 0x42
	// Version is the protocol version this package speaks. A frame with a
	// different version is refused with ErrBadVersion; the refusal names
	// the server's version so a future client can downgrade.
	Version = 1
	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 16
	// DefaultMaxPayload caps a frame's payload when the caller passes no
	// limit of its own (matches the legacy protocol's 1 MiB line limit).
	DefaultMaxPayload = 1 << 20
)

// Type tags a frame's payload codec.
type Type byte

// Frame types. Requests flow client→server, their paired responses
// server→client; TError answers any request the server could not produce
// an authenticated response for (bad payload, unknown client, replay).
const (
	// TQuery is an authenticated query request (codec: EncodeQuery).
	TQuery Type = 1
	// TResult is a sequenced, MAC-endorsed query response (EncodeResult).
	TResult Type = 2
	// TAttest requests an attestation quote over a nonce (EncodeAttest).
	TAttest Type = 3
	// TQuote carries the attestation quote (EncodeQuote).
	TQuote Type = 4
	// THealth requests the health snapshot (empty payload).
	THealth Type = 5
	// THealthInfo carries the health snapshot as JSON (the health channel
	// is diagnostic, not hot-path; reusing the JSON shape keeps one source
	// of truth for supervisors speaking either protocol).
	THealthInfo Type = 6
	// TError is an unauthenticated refusal: a human-readable message for
	// requests with no authenticated response (authorisation failures,
	// malformed payloads, unsupported versions, over-limit frames).
	TError Type = 7
)

func (t Type) String() string {
	switch t {
	case TQuery:
		return "query"
	case TResult:
		return "result"
	case TAttest:
		return "attest"
	case TQuote:
		return "quote"
	case THealth:
		return "health"
	case THealthInfo:
		return "health-info"
	case TError:
		return "error"
	default:
		return fmt.Sprintf("type(%d)", byte(t))
	}
}

// Typed decode errors. Every failure from this package's decoders wraps
// exactly one of these sentinels (TooLargeError wraps ErrTooLarge), so
// callers can classify without string matching and fuzzing can assert the
// contract "typed error or valid frame, never a panic".
var (
	// ErrBadMagic means the bytes do not open a binary frame.
	ErrBadMagic = errors.New("wire: bad frame magic")
	// ErrBadVersion means the frame speaks a protocol version this build
	// does not.
	ErrBadVersion = errors.New("wire: unsupported protocol version")
	// ErrBadType means the frame type byte is not a known frame type.
	ErrBadType = errors.New("wire: unknown frame type")
	// ErrTruncated means the input ended mid-header or mid-payload.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrBadPayload means a payload failed its type-specific codec.
	ErrBadPayload = errors.New("wire: malformed payload")
	// ErrTooLarge is the sentinel under every *TooLargeError.
	ErrTooLarge = errors.New("wire: message too large")
)

// TooLargeError is the typed refusal for a message beyond the size cap —
// a binary frame whose declared payload exceeds the limit, or a legacy
// JSON line beyond the line limit. Size is 0 when only the violation, not
// the full size, is known (the legacy scanner stops at the limit). It
// unwraps to ErrTooLarge.
type TooLargeError struct {
	Limit int
	Size  int
}

// tooLargeMarker is the machine-parseable core of the refusal message; it
// survives the trip through both protocols' string error channels so
// clients can recover the typed error with ParseTooLarge.
const tooLargeMarker = "-byte message limit"

func (e *TooLargeError) Error() string {
	if e.Size > 0 {
		return fmt.Sprintf("wire: request of %d bytes exceeds %d%s", e.Size, e.Limit, tooLargeMarker)
	}
	return fmt.Sprintf("wire: request exceeds %d%s", e.Limit, tooLargeMarker)
}

// Unwrap lets errors.Is(err, ErrTooLarge) match the typed refusal.
func (e *TooLargeError) Unwrap() error { return ErrTooLarge }

// NewTooLarge builds the typed over-limit refusal. size 0 means unknown.
func NewTooLarge(limit, size int) *TooLargeError {
	return &TooLargeError{Limit: limit, Size: size}
}

// ParseTooLarge recovers a typed *TooLargeError from an error message that
// crossed the wire as a string (either protocol). ok is false when the
// message does not carry the over-limit marker.
func ParseTooLarge(msg string) (*TooLargeError, bool) {
	i := strings.Index(msg, tooLargeMarker)
	if i < 0 {
		return nil, false
	}
	// The limit is the digit run ending at the marker.
	j := i
	for j > 0 && msg[j-1] >= '0' && msg[j-1] <= '9' {
		j--
	}
	if j == i {
		return nil, false
	}
	limit, err := strconv.Atoi(msg[j:i])
	if err != nil {
		return nil, false
	}
	return &TooLargeError{Limit: limit}, true
}

// Frame is one decoded wire frame.
type Frame struct {
	Type    Type
	QID     uint64
	Payload []byte
}

// validType reports whether t is a known frame type.
func validType(t Type) bool { return t >= TQuery && t <= TError }

// AppendHeader appends the 16-byte header for a frame of type t, query id
// qid and payload length n.
func AppendHeader(dst []byte, t Type, qid uint64, n int) []byte {
	var h [HeaderSize]byte
	h[0] = Magic0
	h[1] = Magic1
	h[2] = Version
	h[3] = byte(t)
	binary.LittleEndian.PutUint64(h[4:12], qid)
	binary.LittleEndian.PutUint32(h[12:16], uint32(n))
	return append(dst, h[:]...)
}

// AppendFrame appends a complete encoded frame.
func AppendFrame(dst []byte, t Type, qid uint64, payload []byte) []byte {
	dst = AppendHeader(dst, t, qid, len(payload))
	return append(dst, payload...)
}

// decodeHeader validates a 16-byte header, returning the frame skeleton
// (no payload) and the declared payload length.
func decodeHeader(h []byte, maxPayload int) (Frame, int, error) {
	if h[0] != Magic0 || h[1] != Magic1 {
		return Frame{}, 0, fmt.Errorf("%w: 0x%02x 0x%02x", ErrBadMagic, h[0], h[1])
	}
	if h[2] != Version {
		return Frame{}, 0, fmt.Errorf("%w: peer speaks v%d, this build speaks v%d", ErrBadVersion, h[2], Version)
	}
	t := Type(h[3])
	if !validType(t) {
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrBadType, h[3])
	}
	f := Frame{Type: t, QID: binary.LittleEndian.Uint64(h[4:12])}
	n := binary.LittleEndian.Uint32(h[12:16])
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if n > uint32(maxPayload) {
		return f, 0, NewTooLarge(maxPayload, HeaderSize+int(n))
	}
	return f, int(n), nil
}

// DecodeFrame decodes one frame from the front of buf, returning the frame
// and the number of bytes consumed. All errors are typed; a *TooLargeError
// still carries the frame's type and qid so a server can address its
// refusal.
func DecodeFrame(buf []byte, maxPayload int) (Frame, int, error) {
	if len(buf) < HeaderSize {
		return Frame{}, 0, fmt.Errorf("%w: %d header bytes of %d", ErrTruncated, len(buf), HeaderSize)
	}
	f, n, err := decodeHeader(buf[:HeaderSize], maxPayload)
	if err != nil {
		return f, 0, err
	}
	if len(buf) < HeaderSize+n {
		return f, 0, fmt.Errorf("%w: %d payload bytes of %d", ErrTruncated, len(buf)-HeaderSize, n)
	}
	f.Payload = buf[HeaderSize : HeaderSize+n]
	return f, HeaderSize + n, nil
}

// ReadFrame reads one frame from r. io.EOF before any header byte is
// returned verbatim (clean connection close); any other short read maps to
// ErrTruncated. On a *TooLargeError the returned frame carries the
// offending type and qid (payload unread) so the caller can refuse it by
// address before closing the connection.
func ReadFrame(r io.Reader, maxPayload int) (Frame, error) {
	var h [HeaderSize]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return Frame{}, fmt.Errorf("%w: connection closed mid-header", ErrTruncated)
		}
		return Frame{}, err
	}
	f, n, err := decodeHeader(h[:], maxPayload)
	if err != nil {
		return f, err
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, fmt.Errorf("%w: connection closed mid-payload", ErrTruncated)
		}
	}
	return f, nil
}

// WriteFrame writes one frame to w. Callers batching many frames should
// hand in a buffered writer and flush once per quiescence, not per frame —
// that amortisation is most of the binary path's throughput win.
func WriteFrame(w io.Writer, f Frame) error {
	var h [HeaderSize]byte
	h[0] = Magic0
	h[1] = Magic1
	h[2] = Version
	h[3] = byte(f.Type)
	binary.LittleEndian.PutUint64(h[4:12], f.QID)
	binary.LittleEndian.PutUint32(h[12:16], uint32(len(f.Payload)))
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return err
		}
	}
	return nil
}
