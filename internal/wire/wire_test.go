package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"veridb/internal/enclave"
	"veridb/internal/portal"
	"veridb/internal/record"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("hello frames")
	buf := AppendFrame(nil, TQuery, 42, payload)
	f, n, err := DecodeFrame(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) || f.Type != TQuery || f.QID != 42 || !bytes.Equal(f.Payload, payload) {
		t.Fatalf("decoded %+v (consumed %d of %d)", f, n, len(buf))
	}
	// Streaming read agrees with the in-place decode.
	rf, err := ReadFrame(bytes.NewReader(buf), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Type != f.Type || rf.QID != f.QID || !bytes.Equal(rf.Payload, payload) {
		t.Fatalf("ReadFrame %+v != DecodeFrame %+v", rf, f)
	}
	var w bytes.Buffer
	if err := WriteFrame(&w, f); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w.Bytes(), buf) {
		t.Fatal("WriteFrame bytes differ from AppendFrame")
	}
}

func TestFrameTypedErrors(t *testing.T) {
	good := AppendFrame(nil, TResult, 7, []byte("abc"))

	bad := append([]byte(nil), good...)
	bad[0] = '{'
	if _, _, err := DecodeFrame(bad, 0); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[2] = 99
	if _, _, err := DecodeFrame(bad, 0); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[3] = 0xEE
	if _, _, err := DecodeFrame(bad, 0); !errors.Is(err, ErrBadType) {
		t.Fatalf("bad type: %v", err)
	}
	if _, _, err := DecodeFrame(good[:HeaderSize-1], 0); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header: %v", err)
	}
	if _, _, err := DecodeFrame(good[:len(good)-1], 0); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short payload: %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(good[:len(good)-1]), 0); !errors.Is(err, ErrTruncated) {
		t.Fatalf("streaming short payload: %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(nil), 0); err != io.EOF {
		t.Fatalf("clean EOF: %v", err)
	}
}

func TestFrameTooLargeCarriesAddress(t *testing.T) {
	buf := AppendFrame(nil, TQuery, 9, bytes.Repeat([]byte{'x'}, 100))
	f, _, err := DecodeFrame(buf, 50)
	var tl *TooLargeError
	if !errors.As(err, &tl) || !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want TooLargeError, got %v", err)
	}
	if tl.Limit != 50 || tl.Size != HeaderSize+100 {
		t.Fatalf("refusal %+v", tl)
	}
	// The refusal is addressable: type and qid survive so the server can
	// answer the offending request before closing.
	if f.Type != TQuery || f.QID != 9 {
		t.Fatalf("refused frame lost its address: %+v", f)
	}
	// And the message round-trips through a string error channel.
	parsed, ok := ParseTooLarge(tl.Error())
	if !ok || parsed.Limit != 50 {
		t.Fatalf("ParseTooLarge(%q) = %+v, %v", tl.Error(), parsed, ok)
	}
	if _, ok := ParseTooLarge("some other error"); ok {
		t.Fatal("ParseTooLarge matched an unrelated message")
	}
}

func TestQueryCodecRoundTrip(t *testing.T) {
	req := portal.Request{
		ClientID:  "alice",
		QID:       31337,
		Query:     "SELECT * FROM t WHERE a = 'x'",
		TimeoutMS: 1500,
		MAC:       []byte{1, 2, 3, 4},
	}
	got, err := DecodeQuery(req.QID, EncodeQuery(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.ClientID != req.ClientID || got.Query != req.Query ||
		got.TimeoutMS != req.TimeoutMS || !bytes.Equal(got.MAC, req.MAC) || got.QID != req.QID {
		t.Fatalf("round trip %+v != %+v", got, req)
	}
	// Truncation at every prefix is a typed error, never a panic.
	enc := EncodeQuery(req)
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeQuery(req.QID, enc[:i]); err == nil {
			t.Fatalf("truncated payload at %d accepted", i)
		} else if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadPayload) {
			t.Fatalf("untyped error at %d: %v", i, err)
		}
	}
	if _, err := DecodeQuery(req.QID, append(enc, 0)); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

func TestResultCodecRoundTripPreservesMACVerifiability(t *testing.T) {
	key := []byte("codec-key")
	resp := &portal.Response{
		QID: 5, Seq: 77, Affected: 0,
		Columns: []string{"a", "b", "c", "d"},
		Rows: []record.Tuple{
			{record.Int(1), record.Float(2.5), record.Text("x'y"), record.Bool(true)},
			{record.Null(record.TypeInt), record.Float(-0.0), record.Text(""), record.Bool(false)},
		},
	}
	resp.MAC = portal.SignResponse(key, resp)
	got, err := DecodeResult(resp.QID, EncodeResult(resp))
	if err != nil {
		t.Fatal(err)
	}
	// The decoded response must re-sign to the identical MAC: the codec
	// preserved every byte the digest covers, types included.
	if !bytes.Equal(portal.SignResponse(key, got), resp.MAC) {
		t.Fatalf("decoded response re-signs differently:\n  sent %+v\n  got  %+v", resp, got)
	}
	if !bytes.Equal(got.MAC, resp.MAC) {
		t.Fatal("carried MAC differs")
	}
}

func TestResultCodecErrorAndQuarantine(t *testing.T) {
	resp := &portal.Response{QID: 8, Seq: 2, ErrMsg: "no such table", Quarantined: true, MAC: []byte("m")}
	got, err := DecodeResult(resp.QID, EncodeResult(resp))
	if err != nil {
		t.Fatal(err)
	}
	if got.ErrMsg != resp.ErrMsg || !got.Quarantined {
		t.Fatalf("round trip %+v", got)
	}
}

func TestResultCodecRefusesLengthLies(t *testing.T) {
	resp := &portal.Response{QID: 1, Seq: 1, Columns: []string{"a"}, Rows: []record.Tuple{{record.Int(1)}}}
	enc := EncodeResult(resp)
	// Every truncation of a valid payload is a typed error.
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeResult(1, enc[:i]); err == nil {
			t.Fatalf("truncated payload at %d accepted", i)
		} else if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadPayload) {
			t.Fatalf("untyped error at %d: %v", i, err)
		}
	}
}

func TestAttestQuoteCodecs(t *testing.T) {
	nonce := []byte("fresh")
	got, err := DecodeAttest(EncodeAttest(nonce))
	if err != nil || !bytes.Equal(got, nonce) {
		t.Fatalf("attest round trip %q %v", got, err)
	}
	var q enclave.Quote
	copy(q.Measurement[:], bytes.Repeat([]byte{0xAB}, 32))
	q.PublicKey = []byte("pubkey")
	q.Nonce = nonce
	q.Signature = []byte("sig")
	dq, err := DecodeQuote(EncodeQuote(q))
	if err != nil {
		t.Fatal(err)
	}
	if dq.Measurement != q.Measurement || !bytes.Equal(dq.PublicKey, q.PublicKey) ||
		!bytes.Equal(dq.Nonce, q.Nonce) || !bytes.Equal(dq.Signature, q.Signature) {
		t.Fatalf("quote round trip %+v != %+v", dq, q)
	}
	// A quote with a short measurement is refused, not mis-copied.
	bad := EncodeQuote(q)
	bad[0] = 5 // shrink the measurement field length
	if _, err := DecodeQuote(bad[:4+5+len(bad)-4-32]); err == nil {
		t.Fatal("short measurement accepted")
	}
}
