// Package tpcc implements a TPC-C-shaped transactional workload for the
// paper's concurrency experiment (§6.3, Fig. 13: throughput on a
// 20-warehouse configuration while varying the number of clients and the
// number of RSWSs). Tables, population rules and the transaction mix
// follow the TPC-C specification's shape at configurable scale: New-Order
// and Payment carry the write traffic, Order-Status adds reads.
//
// Transactions run directly against the verifiable storage layer (the
// paper's TPC-C numbers measure the storage/verification path, not SQL
// parsing).
package tpcc

import (
	"fmt"
	"math/rand"

	"veridb/internal/record"
	"veridb/internal/storage"
)

// Scale parameters (full TPC-C values in comments).
const (
	// DistrictsPerWarehouse is 10 as in TPC-C.
	DistrictsPerWarehouse = 10
	// CustomersPerDistrict is 3000 in TPC-C; scaled down by default.
	CustomersPerDistrict = 30
	// ItemCount is 100000 in TPC-C; scaled down.
	ItemCount = 1000
	// StockPerWarehouse equals ItemCount.
	StockPerWarehouse = ItemCount
)

// Config sizes the workload.
type Config struct {
	Warehouses int
	// CustomersPerDistrict and Items override the scaled defaults when >0.
	Customers int
	Items     int
}

func (c Config) withDefaults() Config {
	if c.Warehouses <= 0 {
		c.Warehouses = 20
	}
	if c.Customers <= 0 {
		c.Customers = CustomersPerDistrict
	}
	if c.Items <= 0 {
		c.Items = ItemCount
	}
	return c
}

// Composite key helpers: all tables use a single INT primary key.
func districtID(w, d int) int64 { return int64(w)*100 + int64(d) }
func customerID(w, d, c int) int64 {
	return int64(w)*1_000_000 + int64(d)*100_000 + int64(c)
}
func stockID(w, i int) int64 { return int64(w)*1_000_000 + int64(i) }
func orderID(w, d, o int) int64 {
	return int64(w)*100_000_000 + int64(d)*10_000_000 + int64(o)
}
func orderLineID(w, d, o, l int) int64 { return orderID(w, d, o)*100 + int64(l) }

// Tables is the set of populated tables.
type Tables struct {
	Warehouse, District, Customer, Item, Stock *storage.Table
	Orders, OrderLine, NewOrder, History       *storage.Table
}

// CreateTables creates the nine TPC-C tables.
func CreateTables(st *storage.Store) (*Tables, error) {
	mk := func(name string, spec storage.TableSpec) (*storage.Table, error) {
		spec.Name = name
		return st.CreateTable(spec)
	}
	var t Tables
	var err error
	if t.Warehouse, err = mk("warehouse", storage.TableSpec{
		Schema: record.NewSchema(
			record.Column{Name: "w_id", Type: record.TypeInt},
			record.Column{Name: "w_name", Type: record.TypeText},
			record.Column{Name: "w_ytd", Type: record.TypeFloat},
		)}); err != nil {
		return nil, err
	}
	if t.District, err = mk("district", storage.TableSpec{
		Schema: record.NewSchema(
			record.Column{Name: "d_id", Type: record.TypeInt},
			record.Column{Name: "d_name", Type: record.TypeText},
			record.Column{Name: "d_ytd", Type: record.TypeFloat},
			record.Column{Name: "d_next_o_id", Type: record.TypeInt},
		)}); err != nil {
		return nil, err
	}
	if t.Customer, err = mk("customer", storage.TableSpec{
		Schema: record.NewSchema(
			record.Column{Name: "c_id", Type: record.TypeInt},
			record.Column{Name: "c_name", Type: record.TypeText},
			record.Column{Name: "c_balance", Type: record.TypeFloat},
			record.Column{Name: "c_ytd_payment", Type: record.TypeFloat},
			record.Column{Name: "c_payment_cnt", Type: record.TypeInt},
		)}); err != nil {
		return nil, err
	}
	if t.Item, err = mk("item", storage.TableSpec{
		Schema: record.NewSchema(
			record.Column{Name: "i_id", Type: record.TypeInt},
			record.Column{Name: "i_name", Type: record.TypeText},
			record.Column{Name: "i_price", Type: record.TypeFloat},
		)}); err != nil {
		return nil, err
	}
	if t.Stock, err = mk("stock", storage.TableSpec{
		Schema: record.NewSchema(
			record.Column{Name: "s_id", Type: record.TypeInt},
			record.Column{Name: "s_quantity", Type: record.TypeInt},
			record.Column{Name: "s_ytd", Type: record.TypeInt},
			record.Column{Name: "s_order_cnt", Type: record.TypeInt},
		)}); err != nil {
		return nil, err
	}
	if t.Orders, err = mk("orders", storage.TableSpec{
		Schema: record.NewSchema(
			record.Column{Name: "o_id", Type: record.TypeInt},
			record.Column{Name: "o_c_id", Type: record.TypeInt},
			record.Column{Name: "o_ol_cnt", Type: record.TypeInt},
			record.Column{Name: "o_entry_d", Type: record.TypeInt},
		)}); err != nil {
		return nil, err
	}
	if t.OrderLine, err = mk("order_line", storage.TableSpec{
		Schema: record.NewSchema(
			record.Column{Name: "ol_id", Type: record.TypeInt},
			record.Column{Name: "ol_i_id", Type: record.TypeInt},
			record.Column{Name: "ol_quantity", Type: record.TypeInt},
			record.Column{Name: "ol_amount", Type: record.TypeFloat},
		)}); err != nil {
		return nil, err
	}
	if t.NewOrder, err = mk("new_order", storage.TableSpec{
		Schema: record.NewSchema(
			record.Column{Name: "no_o_id", Type: record.TypeInt},
		)}); err != nil {
		return nil, err
	}
	if t.History, err = mk("history", storage.TableSpec{
		Schema: record.NewSchema(
			record.Column{Name: "h_id", Type: record.TypeInt},
			record.Column{Name: "h_c_id", Type: record.TypeInt},
			record.Column{Name: "h_amount", Type: record.TypeFloat},
		)}); err != nil {
		return nil, err
	}
	return &t, nil
}

// Populate loads the initial database state.
func Populate(t *Tables, cfg Config, seed int64) error {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	for i := 1; i <= cfg.Items; i++ {
		err := t.Item.Insert(record.Tuple{
			record.Int(int64(i)),
			record.Text(fmt.Sprintf("item-%d", i)),
			record.Float(1 + rng.Float64()*99),
		})
		if err != nil {
			return err
		}
	}
	for w := 1; w <= cfg.Warehouses; w++ {
		err := t.Warehouse.Insert(record.Tuple{
			record.Int(int64(w)), record.Text(fmt.Sprintf("wh-%d", w)), record.Float(0),
		})
		if err != nil {
			return err
		}
		for i := 1; i <= cfg.Items; i++ {
			err := t.Stock.Insert(record.Tuple{
				record.Int(stockID(w, i)),
				record.Int(int64(10 + rng.Intn(91))),
				record.Int(0), record.Int(0),
			})
			if err != nil {
				return err
			}
		}
		for d := 1; d <= DistrictsPerWarehouse; d++ {
			err := t.District.Insert(record.Tuple{
				record.Int(districtID(w, d)),
				record.Text(fmt.Sprintf("dist-%d-%d", w, d)),
				record.Float(0), record.Int(1),
			})
			if err != nil {
				return err
			}
			for c := 1; c <= cfg.Customers; c++ {
				err := t.Customer.Insert(record.Tuple{
					record.Int(customerID(w, d, c)),
					record.Text(fmt.Sprintf("cust-%d-%d-%d", w, d, c)),
					record.Float(-10), record.Float(10), record.Int(1),
				})
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Worker drives transactions for one client; each worker has a home
// warehouse as in TPC-C.
type Worker struct {
	t    *Tables
	cfg  Config
	rng  *rand.Rand
	home int
	hseq int64 // history key sequence (per worker, non-conflicting)
	id   int

	// Stats
	NewOrders, Payments, OrderStatuses int
}

// NewWorker builds a client bound to a home warehouse.
func NewWorker(t *Tables, cfg Config, id int, seed int64) *Worker {
	cfg = cfg.withDefaults()
	return &Worker{
		t: t, cfg: cfg, id: id,
		rng:  rand.New(rand.NewSource(seed)),
		home: 1 + id%cfg.Warehouses,
	}
}

// Run executes one transaction from the TPC-C mix (45 % New-Order, 43 %
// Payment, 12 % Order-Status by deck shuffle approximation).
func (w *Worker) Run() error {
	switch r := w.rng.Intn(100); {
	case r < 45:
		w.NewOrders++
		return w.NewOrder()
	case r < 88:
		w.Payments++
		return w.Payment()
	default:
		w.OrderStatuses++
		return w.OrderStatus()
	}
}

// NewOrder is the TPC-C New-Order transaction: read the district's next
// order id, bump it, read item prices, update stock rows, insert the
// order, its lines and the new-order entry.
func (w *Worker) NewOrder() error {
	d := 1 + w.rng.Intn(DistrictsPerWarehouse)
	did := districtID(w.home, d)
	// Atomically allocate the district's next order id (the row-level
	// read-modify-write TPC-C requires).
	var oID int
	err := w.t.District.UpdateFunc(record.Int(did), func(row record.Tuple) (record.Tuple, error) {
		oID = int(row[3].I)
		row[3] = record.Int(int64(oID + 1))
		return row, nil
	})
	if err != nil {
		return fmt.Errorf("tpcc: district %d: %w", did, err)
	}
	nLines := 5 + w.rng.Intn(11) // 5..15 as in TPC-C
	cid := customerID(w.home, d, 1+w.rng.Intn(w.cfg.Customers))
	oid := orderID(w.home, d, oID)
	err = w.t.Orders.Insert(record.Tuple{
		record.Int(oid), record.Int(cid), record.Int(int64(nLines)), record.Int(0),
	})
	if err != nil {
		return err
	}
	if err := w.t.NewOrder.Insert(record.Tuple{record.Int(oid)}); err != nil {
		return err
	}
	for l := 1; l <= nLines; l++ {
		item := 1 + w.rng.Intn(w.cfg.Items)
		// 1 % of lines hit a remote warehouse, as in TPC-C.
		wh := w.home
		if w.rng.Intn(100) == 0 && w.cfg.Warehouses > 1 {
			wh = 1 + w.rng.Intn(w.cfg.Warehouses)
		}
		iRow, ev, err := w.t.Item.SearchPK(record.Int(int64(item)))
		if err != nil || !ev.Found {
			return fmt.Errorf("tpcc: item %d missing: %w", item, err)
		}
		price := iRow[2].F
		sid := stockID(wh, item)
		qty := 1 + w.rng.Intn(10)
		err = w.t.Stock.UpdateFunc(record.Int(sid), func(row record.Tuple) (record.Tuple, error) {
			sQty := row[1].I - int64(qty)
			if sQty < 10 {
				sQty += 91
			}
			row[1] = record.Int(sQty)
			row[2] = record.Int(row[2].I + int64(qty))
			row[3] = record.Int(row[3].I + 1)
			return row, nil
		})
		if err != nil {
			return fmt.Errorf("tpcc: stock %d: %w", sid, err)
		}
		err = w.t.OrderLine.Insert(record.Tuple{
			record.Int(orderLineID(w.home, d, oID, l)),
			record.Int(int64(item)), record.Int(int64(qty)),
			record.Float(float64(qty) * price),
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Payment updates warehouse, district and customer balances and logs a
// history row.
func (w *Worker) Payment() error {
	d := 1 + w.rng.Intn(DistrictsPerWarehouse)
	amount := 1 + w.rng.Float64()*4999
	err := w.t.Warehouse.UpdateFunc(record.Int(int64(w.home)), func(row record.Tuple) (record.Tuple, error) {
		row[2] = record.Float(row[2].F + amount)
		return row, nil
	})
	if err != nil {
		return fmt.Errorf("tpcc: warehouse %d: %w", w.home, err)
	}
	did := districtID(w.home, d)
	err = w.t.District.UpdateFunc(record.Int(did), func(row record.Tuple) (record.Tuple, error) {
		row[2] = record.Float(row[2].F + amount)
		return row, nil
	})
	if err != nil {
		return fmt.Errorf("tpcc: district %d: %w", did, err)
	}
	cid := customerID(w.home, d, 1+w.rng.Intn(w.cfg.Customers))
	err = w.t.Customer.UpdateFunc(record.Int(cid), func(row record.Tuple) (record.Tuple, error) {
		row[2] = record.Float(row[2].F - amount)
		row[3] = record.Float(row[3].F + amount)
		row[4] = record.Int(row[4].I + 1)
		return row, nil
	})
	if err != nil {
		return fmt.Errorf("tpcc: customer %d: %w", cid, err)
	}
	w.hseq++
	return w.t.History.Insert(record.Tuple{
		record.Int(int64(w.id)*1_000_000_000 + w.hseq),
		record.Int(cid), record.Float(amount),
	})
}

// OrderStatus reads a customer and scans their most recent order lines.
func (w *Worker) OrderStatus() error {
	d := 1 + w.rng.Intn(DistrictsPerWarehouse)
	cid := customerID(w.home, d, 1+w.rng.Intn(w.cfg.Customers))
	if _, _, err := w.t.Customer.SearchPK(record.Int(cid)); err != nil {
		return err
	}
	// Scan a small order-line range for the district (verified range scan).
	lo := record.Int(orderLineID(w.home, d, 1, 0))
	hi := record.Int(orderLineID(w.home, d, 3, 99))
	sc, err := w.t.OrderLine.ScanRange(0, &lo, &hi)
	if err != nil {
		return err
	}
	defer sc.Close()
	for {
		_, ok, err := sc.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}
