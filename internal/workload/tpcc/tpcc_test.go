package tpcc

import (
	"sync"
	"testing"

	"veridb/internal/enclave"
	"veridb/internal/record"
	"veridb/internal/storage"
	"veridb/internal/vmem"
)

func smallCfg() Config {
	return Config{Warehouses: 2, Customers: 5, Items: 50}
}

func setup(t testing.TB, vc vmem.Config) (*Tables, *storage.Store) {
	t.Helper()
	mem, err := vmem.New(enclave.NewForTest(21), vc)
	if err != nil {
		t.Fatal(err)
	}
	st := storage.NewStore(mem)
	tables, err := CreateTables(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := Populate(tables, smallCfg(), 1); err != nil {
		t.Fatal(err)
	}
	return tables, st
}

func TestPopulateCounts(t *testing.T) {
	tables, _ := setup(t, vmem.Config{})
	cfg := smallCfg()
	if got := tables.Warehouse.RowCount(); got != cfg.Warehouses {
		t.Fatalf("warehouses %d", got)
	}
	if got := tables.District.RowCount(); got != cfg.Warehouses*DistrictsPerWarehouse {
		t.Fatalf("districts %d", got)
	}
	if got := tables.Customer.RowCount(); got != cfg.Warehouses*DistrictsPerWarehouse*cfg.Customers {
		t.Fatalf("customers %d", got)
	}
	if got := tables.Stock.RowCount(); got != cfg.Warehouses*cfg.Items {
		t.Fatalf("stock %d", got)
	}
	if got := tables.Item.RowCount(); got != cfg.Items {
		t.Fatalf("items %d", got)
	}
}

func TestNewOrderEffects(t *testing.T) {
	tables, st := setup(t, vmem.Config{})
	w := NewWorker(tables, smallCfg(), 0, 7)
	ordersBefore := tables.Orders.RowCount()
	if err := w.NewOrder(); err != nil {
		t.Fatal(err)
	}
	if tables.Orders.RowCount() != ordersBefore+1 {
		t.Fatal("order not inserted")
	}
	if tables.NewOrder.RowCount() != 1 {
		t.Fatal("new_order entry missing")
	}
	if tables.OrderLine.RowCount() < 5 {
		t.Fatalf("order lines %d", tables.OrderLine.RowCount())
	}
	if err := st.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestPaymentEffects(t *testing.T) {
	tables, st := setup(t, vmem.Config{})
	w := NewWorker(tables, smallCfg(), 0, 7)
	if err := w.Payment(); err != nil {
		t.Fatal(err)
	}
	// Warehouse YTD grew.
	row, ev, err := tables.Warehouse.SearchPK(record.Int(int64(w.home)))
	if err != nil || !ev.Found {
		t.Fatal(err)
	}
	if row[2].F <= 0 {
		t.Fatalf("w_ytd = %v", row[2].F)
	}
	if tables.History.RowCount() != 1 {
		t.Fatal("history row missing")
	}
	if err := st.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestMixedWorkloadSerial(t *testing.T) {
	tables, st := setup(t, vmem.Config{})
	w := NewWorker(tables, smallCfg(), 0, 9)
	for i := 0; i < 300; i++ {
		if err := w.Run(); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	if w.NewOrders == 0 || w.Payments == 0 || w.OrderStatuses == 0 {
		t.Fatalf("mix skewed: %d/%d/%d", w.NewOrders, w.Payments, w.OrderStatuses)
	}
	if err := st.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentWorkersVerifyClean(t *testing.T) {
	for name, vc := range map[string]vmem.Config{
		"1-rsws":   {Partitions: 1},
		"16-rsws":  {Partitions: 16},
		"128-rsws": {Partitions: 128},
	} {
		t.Run(name, func(t *testing.T) {
			tables, st := setup(t, vc)
			if err := st.Memory().StartVerifier(200); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make(chan error, 8)
			for c := 0; c < 8; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					w := NewWorker(tables, smallCfg(), c, int64(100+c))
					for i := 0; i < 100; i++ {
						if err := w.Run(); err != nil {
							errs <- err
							return
						}
					}
				}(c)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			st.Memory().StopVerifier()
			if err := st.Memory().VerifyAll(); err != nil {
				t.Fatalf("post-workload verification: %v", err)
			}
		})
	}
}

func TestWorkersHaveDistinctHomes(t *testing.T) {
	tables, _ := setup(t, vmem.Config{})
	w0 := NewWorker(tables, smallCfg(), 0, 1)
	w1 := NewWorker(tables, smallCfg(), 1, 1)
	if w0.home == w1.home {
		t.Fatalf("workers share home warehouse %d", w0.home)
	}
}
