// Package tpch generates a deterministic, scaled-down TPC-H-shaped dataset
// and provides the three queries the paper's macro-benchmark runs (§6.3:
// Q1, Q6 and Q19), plus straight-Go reference implementations used to
// check VeriDB's answers.
//
// Only the columns those queries touch are materialised; value
// distributions follow the TPC-H specification closely enough that the
// queries keep their selectivities (Q1 covers ~98 % of lineitem, Q6 ~2 %,
// Q19 a three-branch disjunction over a join). Dates are day numbers with
// 0 = 1992-01-01; the dataset spans 7 years like TPC-H's.
package tpch

import (
	"fmt"
	"math/rand"

	"veridb/internal/record"
	"veridb/internal/storage"
)

// Day numbering constants.
const (
	// LastShipDay is the largest generated l_shipdate.
	LastShipDay = 2526 // ≈ 1998-12-01
	// Q1CutoffDay is DATE '1998-12-01' - 90 days.
	Q1CutoffDay = LastShipDay - 90
	// Q6StartDay is DATE '1994-01-01'.
	Q6StartDay = 730
)

// Lineitem mirrors the columns of TPC-H lineitem used by Q1/Q6/Q19.
type Lineitem struct {
	ID            int64 // synthetic single-column primary key
	PartKey       int64
	Quantity      float64
	ExtendedPrice float64
	Discount      float64
	Tax           float64
	ReturnFlag    string
	LineStatus    string
	ShipDate      int64 // days since 1992-01-01
	ShipInstruct  string
	ShipMode      string
}

// Part mirrors the columns of TPC-H part used by Q19.
type Part struct {
	PartKey   int64
	Brand     string
	Container string
	Size      int64
}

var (
	returnFlags   = []string{"R", "A", "N"}
	shipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	shipModes     = []string{"AIR", "AIR REG", "TRUCK", "MAIL", "SHIP", "RAIL", "FOB"}
	containers    = []string{
		"SM CASE", "SM BOX", "SM PACK", "SM PKG",
		"MED BAG", "MED BOX", "MED PKG", "MED PACK",
		"LG CASE", "LG BOX", "LG PACK", "LG PKG",
		"JUMBO DRUM", "WRAP JAR",
	}
)

// Dataset is one generated instance.
type Dataset struct {
	Lineitems []Lineitem
	Parts     []Part
}

// Generate builds a dataset with the given table sizes (deterministic for
// a seed). TPC-H SF1 has 6 M lineitems and 200 k parts; callers scale
// down, keeping the 30:1 ratio for faithful join selectivity.
func Generate(nLineitems, nParts int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{
		Lineitems: make([]Lineitem, nLineitems),
		Parts:     make([]Part, nParts),
	}
	for i := range d.Parts {
		d.Parts[i] = Part{
			PartKey:   int64(i + 1),
			Brand:     fmt.Sprintf("Brand#%d%d", 1+rng.Intn(5), 1+rng.Intn(5)),
			Container: containers[rng.Intn(len(containers))],
			Size:      int64(1 + rng.Intn(50)),
		}
	}
	for i := range d.Lineitems {
		ship := int64(rng.Intn(LastShipDay + 1))
		// Return flag correlates with receipt date in TPC-H; a coarse
		// approximation keeps Q1's group sizes realistic.
		rf := "N"
		if ship < 1700 {
			rf = returnFlags[rng.Intn(2)] // R or A for old lines
		}
		ls := "O"
		if ship < 1900 {
			ls = "F"
		}
		d.Lineitems[i] = Lineitem{
			ID:            int64(i + 1),
			PartKey:       int64(1 + rng.Intn(nParts)),
			Quantity:      float64(1 + rng.Intn(50)),
			ExtendedPrice: 900 + rng.Float64()*104000,
			Discount:      float64(rng.Intn(11)) / 100, // 0.00..0.10
			Tax:           float64(rng.Intn(9)) / 100,
			ReturnFlag:    rf,
			LineStatus:    ls,
			ShipDate:      ship,
			ShipInstruct:  shipInstructs[rng.Intn(len(shipInstructs))],
			ShipMode:      shipModes[rng.Intn(len(shipModes))],
		}
	}
	return d
}

// CreateTablesSQL returns the DDL for the two tables. l_shipdate gets a
// chain so Q1/Q6's date predicate can use a verified range scan.
func CreateTablesSQL() []string {
	return []string{
		`CREATE TABLE lineitem (
			l_id INT PRIMARY KEY,
			l_partkey INT,
			l_quantity FLOAT,
			l_extendedprice FLOAT,
			l_discount FLOAT,
			l_tax FLOAT,
			l_returnflag TEXT,
			l_linestatus TEXT,
			l_shipdate INT,
			l_shipinstruct TEXT,
			l_shipmode TEXT,
			INDEX(l_shipdate)
		)`,
		`CREATE TABLE part (
			p_partkey INT PRIMARY KEY,
			p_brand TEXT,
			p_container TEXT,
			p_size INT
		)`,
	}
}

// Specs returns the storage-level table specs (for direct loading).
func Specs() []storage.TableSpec {
	return []storage.TableSpec{
		{
			Name: "lineitem",
			Schema: record.NewSchema(
				record.Column{Name: "l_id", Type: record.TypeInt},
				record.Column{Name: "l_partkey", Type: record.TypeInt},
				record.Column{Name: "l_quantity", Type: record.TypeFloat},
				record.Column{Name: "l_extendedprice", Type: record.TypeFloat},
				record.Column{Name: "l_discount", Type: record.TypeFloat},
				record.Column{Name: "l_tax", Type: record.TypeFloat},
				record.Column{Name: "l_returnflag", Type: record.TypeText},
				record.Column{Name: "l_linestatus", Type: record.TypeText},
				record.Column{Name: "l_shipdate", Type: record.TypeInt},
				record.Column{Name: "l_shipinstruct", Type: record.TypeText},
				record.Column{Name: "l_shipmode", Type: record.TypeText},
			),
			PrimaryKey:   0,
			ChainColumns: []int{8},
		},
		{
			Name: "part",
			Schema: record.NewSchema(
				record.Column{Name: "p_partkey", Type: record.TypeInt},
				record.Column{Name: "p_brand", Type: record.TypeText},
				record.Column{Name: "p_container", Type: record.TypeText},
				record.Column{Name: "p_size", Type: record.TypeInt},
			),
			PrimaryKey: 0,
		},
	}
}

// LineitemTuple converts a row for storage insertion.
func LineitemTuple(l Lineitem) record.Tuple {
	return record.Tuple{
		record.Int(l.ID), record.Int(l.PartKey), record.Float(l.Quantity),
		record.Float(l.ExtendedPrice), record.Float(l.Discount), record.Float(l.Tax),
		record.Text(l.ReturnFlag), record.Text(l.LineStatus), record.Int(l.ShipDate),
		record.Text(l.ShipInstruct), record.Text(l.ShipMode),
	}
}

// PartTuple converts a row for storage insertion.
func PartTuple(p Part) record.Tuple {
	return record.Tuple{
		record.Int(p.PartKey), record.Text(p.Brand), record.Text(p.Container), record.Int(p.Size),
	}
}

// Load inserts the dataset into a store created with Specs.
func Load(st *storage.Store, d *Dataset) error {
	li, err := st.Table("lineitem")
	if err != nil {
		return err
	}
	for _, l := range d.Lineitems {
		if err := li.Insert(LineitemTuple(l)); err != nil {
			return err
		}
	}
	pt, err := st.Table("part")
	if err != nil {
		return err
	}
	for _, p := range d.Parts {
		if err := pt.Insert(PartTuple(p)); err != nil {
			return err
		}
	}
	return nil
}

// Q1SQL is TPC-H Query 1 (pricing summary report).
func Q1SQL() string {
	return fmt.Sprintf(`
		SELECT l_returnflag, l_linestatus,
			SUM(l_quantity) AS sum_qty,
			SUM(l_extendedprice) AS sum_base_price,
			SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
			SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
			AVG(l_quantity) AS avg_qty,
			AVG(l_extendedprice) AS avg_price,
			AVG(l_discount) AS avg_disc,
			COUNT(*) AS count_order
		FROM lineitem
		WHERE l_shipdate <= %d
		GROUP BY l_returnflag, l_linestatus
		ORDER BY l_returnflag, l_linestatus`, Q1CutoffDay)
}

// Q6SQL is TPC-H Query 6 (forecasting revenue change).
func Q6SQL() string {
	return fmt.Sprintf(`
		SELECT SUM(l_extendedprice * l_discount) AS revenue
		FROM lineitem
		WHERE l_shipdate >= %d AND l_shipdate < %d
			AND l_discount BETWEEN 0.05 AND 0.07
			AND l_quantity < 24`, Q6StartDay, Q6StartDay+365)
}

// Q19SQL is TPC-H Query 19 (discounted revenue): a Sum over a Join of two
// multidimensional range predicates (§6.3's description).
func Q19SQL() string {
	return `
		SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
		FROM lineitem, part
		WHERE p_partkey = l_partkey
			AND ((p_brand = 'Brand#12'
				AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
				AND l_quantity >= 1 AND l_quantity <= 11
				AND p_size BETWEEN 1 AND 5
				AND l_shipmode IN ('AIR', 'AIR REG')
				AND l_shipinstruct = 'DELIVER IN PERSON')
			OR (p_brand = 'Brand#23'
				AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
				AND l_quantity >= 10 AND l_quantity <= 20
				AND p_size BETWEEN 1 AND 10
				AND l_shipmode IN ('AIR', 'AIR REG')
				AND l_shipinstruct = 'DELIVER IN PERSON')
			OR (p_brand = 'Brand#34'
				AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
				AND l_quantity >= 20 AND l_quantity <= 30
				AND p_size BETWEEN 1 AND 15
				AND l_shipmode IN ('AIR', 'AIR REG')
				AND l_shipinstruct = 'DELIVER IN PERSON'))`
}

// Q1Row is one reference Q1 output row.
type Q1Row struct {
	ReturnFlag, LineStatus              string
	SumQty, SumBase, SumDisc, SumCharge float64
	AvgQty, AvgPrice, AvgDisc           float64
	Count                               int64
}

// RefQ1 computes Q1 directly over the dataset.
func RefQ1(d *Dataset) []Q1Row {
	type acc struct {
		qty, base, disc, charge, discSum float64
		n                                int64
	}
	groups := map[[2]string]*acc{}
	for _, l := range d.Lineitems {
		if l.ShipDate > Q1CutoffDay {
			continue
		}
		k := [2]string{l.ReturnFlag, l.LineStatus}
		a := groups[k]
		if a == nil {
			a = &acc{}
			groups[k] = a
		}
		a.qty += l.Quantity
		a.base += l.ExtendedPrice
		a.disc += l.ExtendedPrice * (1 - l.Discount)
		a.charge += l.ExtendedPrice * (1 - l.Discount) * (1 + l.Tax)
		a.discSum += l.Discount
		a.n++
	}
	var keys [][2]string
	for k := range groups {
		keys = append(keys, k)
	}
	// Sort by (flag, status).
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[j][0] < keys[i][0] || (keys[j][0] == keys[i][0] && keys[j][1] < keys[i][1]) {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	out := make([]Q1Row, 0, len(keys))
	for _, k := range keys {
		a := groups[k]
		out = append(out, Q1Row{
			ReturnFlag: k[0], LineStatus: k[1],
			SumQty: a.qty, SumBase: a.base, SumDisc: a.disc, SumCharge: a.charge,
			AvgQty: a.qty / float64(a.n), AvgPrice: a.base / float64(a.n),
			AvgDisc: a.discSum / float64(a.n), Count: a.n,
		})
	}
	return out
}

// RefQ6 computes Q6 directly over the dataset.
func RefQ6(d *Dataset) float64 {
	var rev float64
	for _, l := range d.Lineitems {
		if l.ShipDate >= Q6StartDay && l.ShipDate < Q6StartDay+365 &&
			l.Discount >= 0.05 && l.Discount <= 0.07 && l.Quantity < 24 {
			rev += l.ExtendedPrice * l.Discount
		}
	}
	return rev
}

// RefQ19 computes Q19 directly over the dataset.
func RefQ19(d *Dataset) float64 {
	parts := make(map[int64]Part, len(d.Parts))
	for _, p := range d.Parts {
		parts[p.PartKey] = p
	}
	in := func(s string, set ...string) bool {
		for _, x := range set {
			if s == x {
				return true
			}
		}
		return false
	}
	var rev float64
	for _, l := range d.Lineitems {
		p, ok := parts[l.PartKey]
		if !ok {
			continue
		}
		if !in(l.ShipMode, "AIR", "AIR REG") || l.ShipInstruct != "DELIVER IN PERSON" {
			continue
		}
		b1 := p.Brand == "Brand#12" && in(p.Container, "SM CASE", "SM BOX", "SM PACK", "SM PKG") &&
			l.Quantity >= 1 && l.Quantity <= 11 && p.Size >= 1 && p.Size <= 5
		b2 := p.Brand == "Brand#23" && in(p.Container, "MED BAG", "MED BOX", "MED PKG", "MED PACK") &&
			l.Quantity >= 10 && l.Quantity <= 20 && p.Size >= 1 && p.Size <= 10
		b3 := p.Brand == "Brand#34" && in(p.Container, "LG CASE", "LG BOX", "LG PACK", "LG PKG") &&
			l.Quantity >= 20 && l.Quantity <= 30 && p.Size >= 1 && p.Size <= 15
		if b1 || b2 || b3 {
			rev += l.ExtendedPrice * (1 - l.Discount)
		}
	}
	return rev
}
