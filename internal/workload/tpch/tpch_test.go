package tpch

import (
	"math"
	"testing"

	"veridb/internal/core"
	"veridb/internal/plan"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(100, 10, 42)
	b := Generate(100, 10, 42)
	if len(a.Lineitems) != 100 || len(a.Parts) != 10 {
		t.Fatalf("sizes %d/%d", len(a.Lineitems), len(a.Parts))
	}
	for i := range a.Lineitems {
		if a.Lineitems[i] != b.Lineitems[i] {
			t.Fatalf("lineitem %d differs across same-seed runs", i)
		}
	}
	c := Generate(100, 10, 43)
	same := true
	for i := range a.Lineitems {
		if a.Lineitems[i] != c.Lineitems[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGeneratedDomains(t *testing.T) {
	d := Generate(2000, 100, 7)
	for _, l := range d.Lineitems {
		if l.Quantity < 1 || l.Quantity > 50 {
			t.Fatalf("quantity %v out of range", l.Quantity)
		}
		if l.Discount < 0 || l.Discount > 0.10 {
			t.Fatalf("discount %v out of range", l.Discount)
		}
		if l.ShipDate < 0 || l.ShipDate > LastShipDay {
			t.Fatalf("shipdate %d out of range", l.ShipDate)
		}
		if l.PartKey < 1 || l.PartKey > 100 {
			t.Fatalf("partkey %d out of range", l.PartKey)
		}
	}
	for _, p := range d.Parts {
		if p.Size < 1 || p.Size > 50 {
			t.Fatalf("size %d out of range", p.Size)
		}
	}
}

func TestSelectivitiesRoughlyTPCH(t *testing.T) {
	d := Generate(20000, 600, 3)
	// Q1 covers nearly all of lineitem.
	q1rows := RefQ1(d)
	var q1n int64
	for _, r := range q1rows {
		q1n += r.Count
	}
	if frac := float64(q1n) / 20000; frac < 0.9 {
		t.Fatalf("Q1 selectivity %.3f, want ≈0.96", frac)
	}
	// Q6 covers a small slice.
	var q6n int
	for _, l := range d.Lineitems {
		if l.ShipDate >= Q6StartDay && l.ShipDate < Q6StartDay+365 &&
			l.Discount >= 0.05 && l.Discount <= 0.07 && l.Quantity < 24 {
			q6n++
		}
	}
	if frac := float64(q6n) / 20000; frac < 0.002 || frac > 0.06 {
		t.Fatalf("Q6 selectivity %.4f, want around 0.02", frac)
	}
	// Q19 matches something but not much.
	if rev := RefQ19(d); rev <= 0 {
		t.Fatal("Q19 reference selected nothing; dataset too small or wrong domains")
	}
}

// TestQueriesAgainstVeriDB is the linchpin: VeriDB's answers for Q1, Q6
// and Q19 must equal the straight-Go reference over the same data, for
// every join plan Fig. 12 compares.
func TestQueriesAgainstVeriDB(t *testing.T) {
	d := Generate(3000, 100, 11)
	db, err := core.Open(core.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, ddl := range CreateTablesSQL() {
		if _, err := db.Execute(ddl); err != nil {
			t.Fatal(err)
		}
	}
	if err := Load(db.Store(), d); err != nil {
		t.Fatal(err)
	}

	approx := func(a, b float64) bool {
		if a == b {
			return true
		}
		diff := math.Abs(a - b)
		return diff/math.Max(math.Abs(a), math.Abs(b)) < 1e-9
	}

	// Q1
	res, err := db.Execute(Q1SQL())
	if err != nil {
		t.Fatalf("Q1: %v", err)
	}
	ref := RefQ1(d)
	if len(res.Rows) != len(ref) {
		t.Fatalf("Q1 groups: got %d want %d", len(res.Rows), len(ref))
	}
	for i, r := range res.Rows {
		w := ref[i]
		if r[0].S != w.ReturnFlag || r[1].S != w.LineStatus {
			t.Fatalf("Q1 row %d keys (%s,%s) want (%s,%s)", i, r[0].S, r[1].S, w.ReturnFlag, w.LineStatus)
		}
		got := []float64{r[2].F, r[3].F, r[4].F, r[5].F, r[6].F, r[7].F, r[8].F}
		want := []float64{w.SumQty, w.SumBase, w.SumDisc, w.SumCharge, w.AvgQty, w.AvgPrice, w.AvgDisc}
		for j := range got {
			if !approx(got[j], want[j]) {
				t.Fatalf("Q1 row %d col %d: %v want %v", i, j, got[j], want[j])
			}
		}
		if r[9].I != w.Count {
			t.Fatalf("Q1 row %d count %d want %d", i, r[9].I, w.Count)
		}
	}

	// Q6
	res, err = db.Execute(Q6SQL())
	if err != nil {
		t.Fatalf("Q6: %v", err)
	}
	if !approx(res.Rows[0][0].F, RefQ6(d)) {
		t.Fatalf("Q6 = %v want %v", res.Rows[0][0].F, RefQ6(d))
	}

	// Q19 under both §6.3 plans.
	want19 := RefQ19(d)
	for _, js := range []plan.JoinStrategy{plan.JoinMerge, plan.JoinNested, plan.JoinAuto} {
		db2, err := core.Open(core.Config{Seed: 6, Join: js})
		if err != nil {
			t.Fatal(err)
		}
		for _, ddl := range CreateTablesSQL() {
			if _, err := db2.Execute(ddl); err != nil {
				t.Fatal(err)
			}
		}
		if err := Load(db2.Store(), d); err != nil {
			t.Fatal(err)
		}
		res, err := db2.Execute(Q19SQL())
		if err != nil {
			t.Fatalf("Q19 (join=%d): %v", js, err)
		}
		got := res.Rows[0][0]
		if want19 == 0 {
			if !got.Null && got.F != 0 {
				t.Fatalf("Q19 (join=%d) = %v want empty", js, got)
			}
		} else if !approx(got.F, want19) {
			t.Fatalf("Q19 (join=%d) = %v want %v", js, got.F, want19)
		}
		db2.Close()
	}

	if err := db.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}
