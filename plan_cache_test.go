package veridb

// Cached-vs-fresh endorsement identity: serving a workload from the plan
// cache must be invisible to the client's endorsement checks — same rows
// in the same order, same error text, and therefore the same response
// digests and MACs as a database compiling every statement fresh. Runs
// the exec-batch workload through the authenticated portal on a
// cache-warmed instance and a cold one and compares the endorsed
// responses byte for byte.

import (
	"bytes"
	"fmt"
	"testing"

	"veridb/internal/portal"
)

func TestPlanCacheEndorsementIdentity(t *testing.T) {
	key := []byte("plan-cache-property-key")

	fresh := open(t, Config{Seed: 7})
	execBatchSetup(t, fresh)

	warm := open(t, Config{Seed: 7})
	execBatchSetup(t, warm)
	// Warm the plan cache outside the portal (Exec does not consume
	// portal sequence numbers), so every SELECT below is served from a
	// cached plan while the fresh instance compiles it for the first
	// time. The two failing queries never populate the cache.
	for _, q := range execBatchQueries {
		_, _ = warm.Exec(q)
	}

	want := serveAll(t, fresh, key)
	got := serveAll(t, warm, key)
	for i, resp := range got {
		q := execBatchQueries[i]
		w := want[i]
		if resp.QID != w.QID || resp.Seq != w.Seq {
			t.Fatalf("%q: qid/seq (%d,%d), fresh (%d,%d)", q, resp.QID, resp.Seq, w.QID, w.Seq)
		}
		if resp.ErrMsg != w.ErrMsg {
			t.Fatalf("%q: error %q, fresh %q", q, resp.ErrMsg, w.ErrMsg)
		}
		if fmt.Sprint(resp.Columns) != fmt.Sprint(w.Columns) {
			t.Fatalf("%q: columns %v, fresh %v", q, resp.Columns, w.Columns)
		}
		if len(resp.Rows) != len(w.Rows) {
			t.Fatalf("%q: %d rows, fresh %d", q, len(resp.Rows), len(w.Rows))
		}
		for r := range resp.Rows {
			if fmt.Sprint(resp.Rows[r]) != fmt.Sprint(w.Rows[r]) {
				t.Fatalf("%q row %d: %v, fresh %v", q, r, resp.Rows[r], w.Rows[r])
			}
		}
		if !bytes.Equal(portal.ResponseDigest(resp), portal.ResponseDigest(w)) {
			t.Fatalf("%q: response digest diverged between cached and fresh execution", q)
		}
		if !bytes.Equal(resp.MAC, w.MAC) {
			t.Fatalf("%q: response MAC diverged between cached and fresh execution", q)
		}
	}
	if s := warm.PlanCache(); s.Hits < 7 {
		t.Fatalf("warmed instance served %d cache hits, want at least the 7 cacheable queries: %+v", s.Hits, s)
	}
	if err := warm.Verify(); err != nil {
		t.Fatalf("verification after cached workload: %v", err)
	}
}
