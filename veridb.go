// Package veridb is an SGX-based verifiable relational database, a
// from-scratch reproduction of "VeriDB: An SGX-based Verifiable Database"
// (Zhou et al., SIGMOD 2021).
//
// VeriDB separates a data-intensive but logically simple verifiable
// storage layer from a logically complex query engine with a small memory
// footprint. The engine (and the query compiler) run inside a trusted
// enclave — simulated in this reproduction, see DESIGN.md — while the
// database itself lives in untrusted memory protected by an offline
// memory-checking protocol: every protected read and write folds into
// keyed ReadSet/WriteSet hashes, and a background verification scan
// detects any tampering that bypassed the protected interfaces. Each row
// stores, per indexed column, its key and the next key in order, so the
// presence or absence of any key is proved by a single record, and range
// scans verify completeness by walking an unbroken key chain.
//
// Quick start:
//
//	db, err := veridb.Open(veridb.Config{})
//	...
//	db.Exec(`CREATE TABLE accounts (id INT PRIMARY KEY, balance FLOAT)`)
//	db.Exec(`INSERT INTO accounts VALUES (1, 100.0)`)
//	res, err := db.Exec(`SELECT balance FROM accounts WHERE id = 1`)
//	...
//	if err := db.Verify(); err != nil { /* tampering detected */ }
package veridb

import (
	"context"
	"fmt"
	"time"

	"veridb/internal/client"
	"veridb/internal/core"
	"veridb/internal/enclave"
	"veridb/internal/govern"
	"veridb/internal/plan"
	"veridb/internal/portal"
	"veridb/internal/record"
	"veridb/internal/sql"
	"veridb/internal/storage"
	"veridb/internal/vmem"
)

// Value is one SQL value; Row is one result row.
type (
	// Value is a typed SQL value.
	Value = record.Value
	// Row is one tuple of values.
	Row = record.Tuple
	// Type is a column type.
	Type = record.Type
)

// Column types.
const (
	// TypeInt is a 64-bit signed integer column.
	TypeInt = record.TypeInt
	// TypeFloat is a 64-bit float column.
	TypeFloat = record.TypeFloat
	// TypeText is a string column.
	TypeText = record.TypeText
	// TypeBool is a boolean column.
	TypeBool = record.TypeBool
)

// Value constructors.
var (
	// Int builds an INT value.
	Int = record.Int
	// Float builds a FLOAT value.
	Float = record.Float
	// Text builds a TEXT value.
	Text = record.Text
	// Bool builds a BOOL value.
	Bool = record.Bool
	// Null builds a NULL of the given type.
	Null = record.Null
)

// Client-protocol types for authenticated sessions (paper §5.1).
type (
	// Request is an authenticated client query.
	Request = portal.Request
	// Response is a sequenced, MACed query response.
	Response = portal.Response
	// Client is the user-side verifier (request signing, response MAC
	// checks, rollback detection, attestation pinning).
	Client = client.Client
	// Quote is a simulated SGX attestation quote.
	Quote = enclave.Quote
)

// NewClient builds a client holding the pre-exchanged MAC key.
var NewClient = client.New

// Sentinel errors surfaced through the client protocol.
var (
	// ErrRollback means a response reused a sequence number: the server
	// rolled the database back to an earlier state (§5.1).
	ErrRollback = client.ErrRollback
	// ErrBadMAC means a response failed its MAC check.
	ErrBadMAC = client.ErrBadMAC
	// ErrUnauthorized means the portal rejected a request's authorisation.
	ErrUnauthorized = portal.ErrUnauthorized
	// ErrQuarantined (client side) means the server returned an
	// authenticated "integrity compromised" response: its verifier raised
	// a tamper alarm and it refuses to endorse further results.
	ErrQuarantined = client.ErrQuarantined
	// ErrServerQuarantined (server side) fences every statement once the
	// instance's own verifier has raised its sticky alarm.
	ErrServerQuarantined = core.ErrQuarantined
)

// Health is a point-in-time snapshot of an instance's integrity state
// (quarantine flag, sticky alarm text, per-partition verification epochs,
// verifier liveness, counters).
type Health = core.Health

// PlanCacheStats counts prepared-plan cache traffic (hits, misses,
// invalidations, live entries).
type PlanCacheStats = plan.CacheStats

// GovernStats snapshots the overload-protection state: memory-budget
// usage, admission/shed counters, expired sessions, live snapshot pins
// and the portal response cache.
type GovernStats = core.GovernStats

// Overload-protection errors crossing the public API.
var (
	// ErrOverloaded means admission control shed the statement; the typed
	// error carries a RetryAfter hint and the retrying client backs off.
	ErrOverloaded = govern.ErrOverloaded
	// ErrResourceExhausted means the statement would exceed MemBudget.
	ErrResourceExhausted = govern.ErrResourceExhausted
	// ErrSessionExpired means the idle reaper released this session's
	// pinned snapshot (SessionMaxIdle); BEGIN SNAPSHOT again.
	ErrSessionExpired = core.ErrSessionExpired
)

// JoinStrategy names for Config.Join.
const (
	// JoinAuto picks index-nested-loop when the inner column has a chain,
	// else hash join.
	JoinAuto = "auto"
	// JoinIndex forces index-nested-loop joins.
	JoinIndex = "index"
	// JoinMerge forces sort-merge joins.
	JoinMerge = "merge"
	// JoinHash forces hash joins.
	JoinHash = "hash"
	// JoinNested forces naive nested-loop joins.
	JoinNested = "nested"
)

// Config tunes a database instance. The zero value is a verifying,
// single-RSWS VeriDB with the paper's recommended optimisations on.
type Config struct {
	// Baseline disables all verification machinery (the paper's Baseline
	// configuration) — benchmarking only.
	Baseline bool
	// RSWSPartitions is the number of ReadSet/WriteSet pairs with
	// independent locks (§4.3). Zero means 1.
	RSWSPartitions int
	// VerifyMetadata includes page metadata in verification ("RSWS incl.
	// metadata", Fig. 9).
	VerifyMetadata bool
	// FullScan disables touched-page tracking during verification.
	FullScan bool
	// EagerCompaction compacts pages on delete instead of at scan time.
	EagerCompaction bool
	// PageSize in bytes (default 8 KB).
	PageSize int
	// VerifyEveryOps starts the background verifier scanning one page per
	// this many operations (Fig. 10's knob). Zero: verify manually.
	VerifyEveryOps int
	// VerifyWorkers is the number of concurrent verification workers used
	// by Verify, the background verifier's scanner pool, and intra-page
	// PRF evaluation. Zero means GOMAXPROCS; 1 is the serial verifier.
	VerifyWorkers int
	// TableShards is the number of hash shards per table, each with its
	// own latch, key chains and pages; scans stitch the shards back
	// together in key order. Zero or 1 keeps the single-shard layout
	// (bit-identical to pre-sharding builds).
	TableShards int
	// Join selects the default join strategy ("auto" if empty).
	Join string
	// ExecBatchSize is the vectorized execution batch size: queries pull
	// batches of this many rows through the operator pipeline instead of
	// one tuple at a time. Zero means the default (256). 1 forces the
	// exact legacy tuple-at-a-time execution path; results and response
	// MACs are bit-identical either way.
	ExecBatchSize int
	// ECallCycles simulates SGX boundary-crossing cost in CPU cycles
	// (§2.1 reports ~8000); zero disables the cost model.
	ECallCycles int64
	// EPCBytes caps simulated enclave memory (default 96 MB).
	EPCBytes int64
	// Seed makes the enclave PRF key deterministic (tests/benchmarks).
	Seed uint64
	// DataDir enables authenticated durable storage: every mutating
	// statement is appended to a MACed, sequence-chained write-ahead log
	// in this directory (fsynced before the statement is acked), periodic
	// checkpoints freeze the verified tables into immutable segment files
	// with a MACed manifest, and Open recovers the image through the
	// protected write interfaces behind a full verification gate —
	// tampered durable state opens quarantined. Empty (the default) keeps
	// the database purely in memory, bit-identical to prior behavior.
	DataDir string
	// CheckpointEvery checkpoints automatically after this many logged
	// statements. Zero disables automatic checkpoints (WAL-only
	// durability; Checkpoint can still be called manually). Requires
	// DataDir.
	CheckpointEvery int
	// GroupCommitMaxDelay enables the group-commit pipeline: concurrent
	// mutating statements appended to the WAL within this window are
	// written and fsynced as one group, amortising the fsync without
	// weakening the ack barrier (no statement is acked before its group's
	// fsync). Zero disables grouping — one fsync per statement,
	// bit-identical to prior behavior. Requires DataDir.
	GroupCommitMaxDelay time.Duration
	// GroupCommitMaxBatch closes a commit group early once this many
	// statements are waiting, without waiting out GroupCommitMaxDelay.
	// Zero means the default (64) when group commit is enabled. Requires
	// GroupCommitMaxDelay > 0.
	GroupCommitMaxBatch int
	// PlanCacheSize bounds the prepared-plan LRU: compiled statements are
	// reused by normalized SQL text, skipping the parser and planner for
	// repeated statement shapes. The cache invalidates on DDL and
	// shard-layout changes; cached and fresh executions produce identical
	// rows, digests and response MACs. Zero means the default (128).
	PlanCacheSize int
	// MVCCGCInterval runs a background version-garbage-collection pass at
	// this period, pruning row versions no live snapshot can read. Zero
	// disables the background collector (retired versions still fall away
	// opportunistically as rows are rewritten).
	MVCCGCInterval time.Duration
	// MaxVersionsPerRow caps the retained history per row chain key; when
	// a writer would exceed it the oldest version is dropped and snapshots
	// old enough to need it fail with a snapshot-too-old error instead of
	// reading an inconsistent cut. Zero keeps history bounded only by the
	// GC floor.
	MaxVersionsPerRow int
	// StatementTimeout bounds each statement's wall-clock execution. The
	// deadline is threaded as a context through the planner, engine
	// operators and storage scans; at expiry the statement fails with
	// context.DeadlineExceeded and releases its latches, snapshot pins,
	// spool tables and merge producers. Zero disables the server-side
	// deadline (per-request deadlines on the wire still apply; the sooner
	// of the two wins).
	StatementTimeout time.Duration
	// MemBudget caps the estimated bytes of statement materialisations
	// (sorts, hash tables, spools), MVCC version chains and the portal
	// response cache, process-wide. Statements that would exceed it fail
	// fast with a typed resource-exhausted error; under pressure
	// spill-eligible operators degrade to smaller batches first. Zero
	// tracks usage without refusing.
	MemBudget int64
	// MaxConcurrentStatements caps statements executing in the kernel at
	// once. Excess statements wait in a bounded queue and are shed with a
	// typed overloaded error carrying a RetryAfter hint once the queue is
	// full or AdmissionMaxWait elapses; the retrying client honors the
	// hint with jittered backoff. Zero disables admission control.
	MaxConcurrentStatements int
	// AdmissionQueueDepth bounds how many statements may wait for an
	// execution slot before new arrivals are shed immediately. Meaningful
	// only with MaxConcurrentStatements > 0.
	AdmissionQueueDepth int
	// AdmissionMaxWait bounds how long a queued statement waits for a
	// slot before being shed. Zero means 50ms. Meaningful only with
	// MaxConcurrentStatements > 0.
	AdmissionMaxWait time.Duration
	// SessionMaxIdle expires a client session's pinned snapshot (BEGIN
	// SNAPSHOT) after this much statement inactivity, so a vanished client
	// cannot hold version garbage collection hostage. The expired
	// session's next statement fails once with a session-expired error;
	// the client re-pins with a fresh BEGIN SNAPSHOT. Zero never expires.
	SessionMaxIdle time.Duration
	// ResponseCacheBytes bounds the portal's retry-idempotence response
	// cache by total estimated bytes, evicting oldest first (the
	// per-client entry cap still applies). Zero keeps the default (16 MB).
	ResponseCacheBytes int64
}

// validate rejects configurations that would otherwise surface as opaque
// failures deep inside the memory or storage layers.
func (c Config) validate() error {
	if c.RSWSPartitions < 0 {
		return fmt.Errorf("veridb: RSWSPartitions is %d; want 0 (default) or a positive partition count", c.RSWSPartitions)
	}
	if c.VerifyWorkers < 0 {
		return fmt.Errorf("veridb: VerifyWorkers is %d; want 0 (GOMAXPROCS) or a positive worker count", c.VerifyWorkers)
	}
	if c.PageSize < 0 {
		return fmt.Errorf("veridb: PageSize is %d bytes; want 0 (default 8 KB) or a positive size", c.PageSize)
	}
	if c.TableShards < 0 {
		return fmt.Errorf("veridb: TableShards is %d; want 0 (unsharded) or a positive shard count", c.TableShards)
	}
	if c.VerifyEveryOps < 0 {
		return fmt.Errorf("veridb: VerifyEveryOps is %d; want 0 (manual verification) or a positive op interval", c.VerifyEveryOps)
	}
	if c.EPCBytes < 0 {
		return fmt.Errorf("veridb: EPCBytes is %d; want 0 (default 96 MB) or a positive cap", c.EPCBytes)
	}
	if c.ExecBatchSize < 0 {
		return fmt.Errorf("veridb: ExecBatchSize is %d; want 0 (default %d), 1 (tuple-at-a-time) or a larger batch size", c.ExecBatchSize, storage.DefaultBatchCapacity)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("veridb: CheckpointEvery is %d; want 0 (manual checkpoints) or a positive statement interval", c.CheckpointEvery)
	}
	if c.CheckpointEvery > 0 && c.DataDir == "" {
		return fmt.Errorf("veridb: CheckpointEvery %d requires DataDir (checkpoints need durable storage)", c.CheckpointEvery)
	}
	if c.GroupCommitMaxDelay < 0 {
		return fmt.Errorf("veridb: GroupCommitMaxDelay is %v; want 0 (one fsync per statement) or a positive window", c.GroupCommitMaxDelay)
	}
	if c.GroupCommitMaxDelay > time.Second {
		return fmt.Errorf("veridb: GroupCommitMaxDelay is %v; every statement ack waits out this window — want at most 1s", c.GroupCommitMaxDelay)
	}
	if c.GroupCommitMaxDelay > 0 && c.DataDir == "" {
		return fmt.Errorf("veridb: GroupCommitMaxDelay %v requires DataDir (group commit batches WAL fsyncs)", c.GroupCommitMaxDelay)
	}
	if c.GroupCommitMaxBatch < 0 {
		return fmt.Errorf("veridb: GroupCommitMaxBatch is %d; want 0 (default 64) or a positive group size", c.GroupCommitMaxBatch)
	}
	if c.GroupCommitMaxBatch > 0 && c.GroupCommitMaxDelay == 0 {
		return fmt.Errorf("veridb: GroupCommitMaxBatch %d has no effect without GroupCommitMaxDelay (group commit is off)", c.GroupCommitMaxBatch)
	}
	if c.PlanCacheSize < 0 {
		return fmt.Errorf("veridb: PlanCacheSize is %d; want 0 (default 128) or a positive entry count", c.PlanCacheSize)
	}
	if c.MVCCGCInterval < 0 {
		return fmt.Errorf("veridb: MVCCGCInterval is %v; want 0 (no background version GC) or a positive period", c.MVCCGCInterval)
	}
	if c.MaxVersionsPerRow < 0 {
		return fmt.Errorf("veridb: MaxVersionsPerRow is %d; want 0 (GC-floor bounded history) or a positive cap", c.MaxVersionsPerRow)
	}
	if c.StatementTimeout < 0 {
		return fmt.Errorf("veridb: StatementTimeout is %v; want 0 (no server-side deadline) or a positive duration", c.StatementTimeout)
	}
	if c.MemBudget < 0 {
		return fmt.Errorf("veridb: MemBudget is %d; want 0 (track without refusing) or a positive byte cap", c.MemBudget)
	}
	if c.MaxConcurrentStatements < 0 {
		return fmt.Errorf("veridb: MaxConcurrentStatements is %d; want 0 (no admission control) or a positive slot count", c.MaxConcurrentStatements)
	}
	if c.AdmissionQueueDepth < 0 {
		return fmt.Errorf("veridb: AdmissionQueueDepth is %d; want 0 (shed when all slots busy) or a positive queue depth", c.AdmissionQueueDepth)
	}
	if c.AdmissionQueueDepth > 0 && c.MaxConcurrentStatements == 0 {
		return fmt.Errorf("veridb: AdmissionQueueDepth %d has no effect without MaxConcurrentStatements (admission control is off)", c.AdmissionQueueDepth)
	}
	if c.AdmissionMaxWait < 0 {
		return fmt.Errorf("veridb: AdmissionMaxWait is %v; want 0 (default 50ms) or a positive wait", c.AdmissionMaxWait)
	}
	if c.AdmissionMaxWait > 0 && c.MaxConcurrentStatements == 0 {
		return fmt.Errorf("veridb: AdmissionMaxWait %v has no effect without MaxConcurrentStatements (admission control is off)", c.AdmissionMaxWait)
	}
	if c.SessionMaxIdle < 0 {
		return fmt.Errorf("veridb: SessionMaxIdle is %v; want 0 (sessions never expire) or a positive idle bound", c.SessionMaxIdle)
	}
	if c.ResponseCacheBytes < 0 {
		return fmt.Errorf("veridb: ResponseCacheBytes is %d; want 0 (default 16 MB) or a positive byte cap", c.ResponseCacheBytes)
	}
	return nil
}

func (c Config) coreConfig() (core.Config, error) {
	if err := c.validate(); err != nil {
		return core.Config{}, err
	}
	var js plan.JoinStrategy
	switch c.Join {
	case "", JoinAuto:
		js = plan.JoinAuto
	case JoinIndex:
		js = plan.JoinIndex
	case JoinMerge:
		js = plan.JoinMerge
	case JoinHash:
		js = plan.JoinHash
	case JoinNested:
		js = plan.JoinNested
	default:
		return core.Config{}, fmt.Errorf("veridb: unknown join strategy %q", c.Join)
	}
	mode := vmem.ModeRSWS
	if c.Baseline {
		mode = vmem.ModeBaseline
	}
	batch := c.ExecBatchSize
	if batch == 0 {
		batch = storage.DefaultBatchCapacity
	}
	gcBatch := c.GroupCommitMaxBatch
	if c.GroupCommitMaxDelay > 0 && gcBatch == 0 {
		gcBatch = 64
	}
	planCache := c.PlanCacheSize
	if planCache == 0 {
		planCache = 128
	}
	return core.Config{
		Enclave: enclave.Config{EPCBytes: c.EPCBytes, ECallCycles: c.ECallCycles},
		Memory: vmem.Config{
			Mode:            mode,
			Partitions:      c.RSWSPartitions,
			PageSize:        c.PageSize,
			VerifyMetadata:  c.VerifyMetadata,
			FullScan:        c.FullScan,
			EagerCompaction: c.EagerCompaction,
			VerifyWorkers:   c.VerifyWorkers,
		},
		Join:            js,
		VerifyEveryOps:  c.VerifyEveryOps,
		TableShards:     c.TableShards,
		ExecBatchSize:   batch,
		Seed:            c.Seed,
		DataDir:         c.DataDir,
		CheckpointEvery: c.CheckpointEvery,

		GroupCommitMaxDelay: c.GroupCommitMaxDelay,
		GroupCommitMaxBatch: gcBatch,
		PlanCacheSize:       planCache,
		MVCCGCInterval:      c.MVCCGCInterval,
		MaxVersionsPerRow:   c.MaxVersionsPerRow,

		StatementTimeout:        c.StatementTimeout,
		MemBudget:               c.MemBudget,
		MaxConcurrentStatements: c.MaxConcurrentStatements,
		AdmissionQueueDepth:     c.AdmissionQueueDepth,
		AdmissionMaxWait:        c.AdmissionMaxWait,
		SessionMaxIdle:          c.SessionMaxIdle,
		ResponseCacheBytes:      c.ResponseCacheBytes,
	}, nil
}

// Result is the outcome of one statement.
type Result struct {
	// Columns names the result columns (queries only).
	Columns []string
	// Rows holds the result rows (queries only).
	Rows []Row
	// Affected counts modified rows (DML only).
	Affected int
}

// Stats snapshots the verification machinery's counters.
type Stats struct {
	// Ops counts protected storage operations.
	Ops uint64
	// PRFEvals counts keyed-PRF evaluations (the dominant verification
	// cost, §6.1).
	PRFEvals uint64
	// PagesAlive counts registered pages.
	PagesAlive uint64
	// Scans counts full page verification scans.
	Scans uint64
	// FastScans counts untouched pages carried forward without hashing.
	FastScans uint64
	// Rotations counts completed verification epochs.
	Rotations uint64
	// Alarms counts raised tamper alarms.
	Alarms uint64
	// ECalls and OCalls count simulated enclave boundary crossings.
	ECalls, OCalls int64
	// EPCUsed is the simulated enclave memory in use, bytes.
	EPCUsed int64
}

// DB is a VeriDB instance.
type DB struct {
	inner *core.DB
}

// Open creates a database.
func Open(cfg Config) (*DB, error) {
	cc, err := cfg.coreConfig()
	if err != nil {
		return nil, err
	}
	inner, err := core.Open(cc)
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner}, nil
}

// Close stops background verification.
func (db *DB) Close() { db.inner.Close() }

// Exec parses and executes one SQL statement (DDL, DML or query).
func (db *DB) Exec(query string) (*Result, error) {
	res, err := db.inner.Execute(query)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: res.Columns, Rows: res.Rows, Affected: res.Affected}, nil
}

// Explain returns the physical plan chosen for a SELECT.
func (db *DB) Explain(query string) (string, error) { return db.inner.Explain(query) }

// PlanCache snapshots the prepared-plan cache counters.
func (db *DB) PlanCache() PlanCacheStats { return db.inner.PlanCacheStats() }

// Govern snapshots the overload-protection counters (memory budget,
// admission queue, expired sessions, snapshot pins, response cache).
func (db *DB) Govern() GovernStats { return db.inner.GovernStats() }

// ExecTimeout is Exec with a per-statement deadline: the statement is
// cancelled (resources released) when the timeout elapses, failing with
// context.DeadlineExceeded. A configured StatementTimeout still applies;
// the sooner deadline wins.
func (db *DB) ExecTimeout(query string, timeout time.Duration) (*Result, error) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, err := db.inner.ExecuteContext(ctx, "", query)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: res.Columns, Rows: res.Rows, Affected: res.Affected}, nil
}

// Checkpoint (durable instances only) freezes the verified tables into
// immutable on-disk segment files with a MACed manifest and rotates the
// write-ahead log. Recovery from the new checkpoint replays only the WAL
// records appended after it.
func (db *DB) Checkpoint() error { return db.inner.Checkpoint() }

// WALNextSeq returns the next write-ahead-log sequence number (0 for
// in-memory instances). Diagnostic: sequence numbers never reset across
// checkpoints, so this counts logged statements over the database's life.
func (db *DB) WALNextSeq() uint64 { return db.inner.WALNextSeq() }

// Verify runs a full verification pass over every RSWS partition and
// returns the tamper alarm, if any (deferred verification, §4.1).
func (db *DB) Verify() error { return db.inner.Memory().VerifyAll() }

// Alarm returns the sticky tamper alarm raised by any earlier
// verification, or nil.
func (db *DB) Alarm() error { return db.inner.Memory().Alarm() }

// Health snapshots the instance's integrity state. Polling it also drives
// quarantine entry on an otherwise idle instance: the first call that
// observes a tamper alarm fences the database and stops its verifier.
func (db *DB) Health() Health { return db.inner.Health() }

// QuarantineError returns the sticky quarantine error (wrapping
// ErrServerQuarantined) once the verifier's alarm has tripped, or nil
// while the instance is healthy.
func (db *DB) QuarantineError() error { return db.inner.QuarantineError() }

// StartVerifier launches non-quiescent background verification, scanning
// one page per opsPerPageScan protected operations on the configured
// worker pool. It returns an error if a verifier is already running.
func (db *DB) StartVerifier(opsPerPageScan int) error {
	return db.inner.Memory().StartVerifier(opsPerPageScan)
}

// StopVerifier stops background verification, completing the pass in
// flight.
func (db *DB) StopVerifier() { db.inner.Memory().StopVerifier() }

// Stats returns verification and enclave counters.
func (db *DB) Stats() Stats {
	m := db.inner.Memory().Stats()
	e := db.inner.Enclave().Stats()
	return Stats{
		Ops: m.Ops, PRFEvals: m.PRFEvals, PagesAlive: m.PagesAlive,
		Scans: m.Scans, FastScans: m.FastScans, Rotations: m.Rotations,
		Alarms: m.Alarms, ECalls: e.ECalls, OCalls: e.OCalls, EPCUsed: e.EPCUsed,
	}
}

// Measurement returns the enclave identity hash clients attest against.
func (db *DB) Measurement() [32]byte { return db.inner.Enclave().Measurement() }

// Attest produces an attestation quote over the client's nonce.
func (db *DB) Attest(nonce []byte) Quote { return db.inner.Enclave().Attest(nonce) }

// ProvisionClient installs a pre-exchanged MAC key for a client id.
func (db *DB) ProvisionClient(id string, key []byte) {
	db.inner.Enclave().ProvisionMACKey(id, key)
}

// Serve executes an authenticated request through the query portal
// (authorisation, sequencing, response MAC — §5.1).
func (db *DB) Serve(req Request) (*Response, error) {
	return db.inner.Portal().Serve(req)
}

// RecoverFrom rebuilds this (fresh) database from a replica by replaying
// its contents through the protected write interfaces, then resumes the
// sequence counter above seqFloor (the client's highest seen number).
func (db *DB) RecoverFrom(replica *DB, seqFloor uint64) error {
	return db.inner.Recover(replica.inner, seqFloor)
}

// TableNames lists the database's tables.
func (db *DB) TableNames() []string { return db.inner.TableNames() }

// RowCount returns the number of rows in a table.
func (db *DB) RowCount(table string) (int, error) {
	t, err := db.inner.Store().Table(table)
	if err != nil {
		return 0, err
	}
	return t.RowCount(), nil
}

// InjectTamper simulates the §3.1 adversary: it flips bytes of one stored
// record directly in untrusted memory, bypassing every protected
// interface. Verification must subsequently raise an alarm. Demo/test use
// only.
func (db *DB) InjectTamper(table string) error {
	t, err := db.inner.Store().Table(table)
	if err != nil {
		return err
	}
	mem := db.inner.Memory()
	for _, pid := range mem.PageIDs() {
		// Pick a victim record first; Slots holds the page lock, so the
		// actual tampering happens after it returns.
		victim := -1
		var corrupted []byte
		err := mem.Slots(pid, func(slot int, rec []byte) bool {
			if len(rec) < 4 {
				return true
			}
			victim = slot
			corrupted = append([]byte(nil), rec...)
			for i := len(corrupted) - 4; i < len(corrupted); i++ {
				corrupted[i] ^= 0xFF
			}
			return false
		})
		if err != nil || victim < 0 {
			continue
		}
		if mem.TamperRecord(pid, victim, corrupted) == nil {
			// Make sure the tampered page is covered by the next scan even
			// under touched-page tracking.
			_, _ = mem.Get(pid, victim)
			return nil
		}
	}
	return fmt.Errorf("veridb: table %q has no record to tamper", t.Name())
}

// ParseOnly checks a statement's syntax without executing it.
func ParseOnly(query string) error {
	_, err := sql.Parse(query)
	return err
}
