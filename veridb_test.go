package veridb

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func open(t *testing.T, cfg Config) *DB {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func mustExec(t *testing.T, db *DB, q string) *Result {
	t.Helper()
	res, err := db.Exec(q)
	if err != nil {
		t.Fatalf("Exec(%q): %v", q, err)
	}
	return res
}

func TestQuickstartFlow(t *testing.T) {
	db := open(t, Config{})
	mustExec(t, db, `CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance FLOAT)`)
	mustExec(t, db, `INSERT INTO accounts VALUES (1,'alice',100.0),(2,'bob',250.5)`)
	res := mustExec(t, db, `SELECT owner, balance FROM accounts WHERE id = 2`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "bob" || res.Rows[0][1].F != 250.5 {
		t.Fatalf("rows %v", res.Rows)
	}
	if res.Columns[0] != "owner" {
		t.Fatalf("columns %v", res.Columns)
	}
	if err := db.Verify(); err != nil {
		t.Fatal(err)
	}
	if n, err := db.RowCount("accounts"); err != nil || n != 2 {
		t.Fatalf("RowCount = %d, %v", n, err)
	}
	if got := db.TableNames(); len(got) != 1 || got[0] != "accounts" {
		t.Fatalf("TableNames %v", got)
	}
}

func TestTamperDetectionEndToEnd(t *testing.T) {
	db := open(t, Config{})
	mustExec(t, db, `CREATE TABLE t (a INT PRIMARY KEY, b TEXT)`)
	for i := 0; i < 20; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'row-%d-payload')`, i, i))
	}
	if err := db.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := db.InjectTamper("t"); err != nil {
		t.Fatal(err)
	}
	if err := db.Verify(); err == nil {
		t.Fatal("tampering not detected")
	}
	if db.Alarm() == nil {
		t.Fatal("alarm not sticky")
	}
	if db.Stats().Alarms == 0 {
		t.Fatal("alarm counter zero")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Open(Config{Join: "quantum"}); err == nil {
		t.Fatal("bad join strategy accepted")
	}
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"negative partitions", Config{RSWSPartitions: -2}, "RSWSPartitions"},
		{"negative workers", Config{VerifyWorkers: -1}, "VerifyWorkers"},
		{"negative page size", Config{PageSize: -4096}, "PageSize"},
		{"negative shards", Config{TableShards: -3}, "TableShards"},
		{"negative verify interval", Config{VerifyEveryOps: -10}, "VerifyEveryOps"},
		{"negative epc", Config{EPCBytes: -1}, "EPCBytes"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Open(c.cfg)
			if err == nil {
				t.Fatalf("Open accepted %+v", c.cfg)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not name the bad field %s", err, c.want)
			}
		})
	}
}

func TestShardedSQLEndToEnd(t *testing.T) {
	// The same SQL workload must produce identical answers whether tables
	// are sharded or not; sharding is purely a storage-layout knob.
	run := func(t *testing.T, shards int) ([]Row, []Row) {
		db := open(t, Config{TableShards: shards, VerifyWorkers: 4})
		mustExec(t, db, `CREATE TABLE orders (id INT PRIMARY KEY, qty INT, INDEX (qty))`)
		for i := 0; i < 200; i++ {
			mustExec(t, db, fmt.Sprintf(`INSERT INTO orders VALUES (%d, %d)`, (i*29)%500, i%10))
		}
		mustExec(t, db, `DELETE FROM orders WHERE qty = 3`)
		mustExec(t, db, `UPDATE orders SET qty = 99 WHERE qty = 5`)
		all := mustExec(t, db, `SELECT id, qty FROM orders ORDER BY id`)
		rng := mustExec(t, db, `SELECT id FROM orders WHERE qty >= 4 AND qty <= 9 ORDER BY id`)
		if err := db.Verify(); err != nil {
			t.Fatal(err)
		}
		return all.Rows, rng.Rows
	}
	baseAll, baseRng := run(t, 1)
	if len(baseAll) == 0 || len(baseRng) == 0 {
		t.Fatal("baseline workload produced no rows")
	}
	for _, shards := range []int{4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			all, rng := run(t, shards)
			if fmt.Sprint(all) != fmt.Sprint(baseAll) {
				t.Fatalf("full query disagrees at %d shards:\n got %v\nwant %v", shards, all, baseAll)
			}
			if fmt.Sprint(rng) != fmt.Sprint(baseRng) {
				t.Fatalf("range query disagrees at %d shards:\n got %v\nwant %v", shards, rng, baseRng)
			}
		})
	}
}

func TestJoinStrategiesAgree(t *testing.T) {
	want := ""
	for _, j := range []string{JoinAuto, JoinIndex, JoinMerge, JoinHash, JoinNested} {
		db := open(t, Config{Join: j})
		mustExec(t, db, `CREATE TABLE a (id INT PRIMARY KEY, v INT)`)
		mustExec(t, db, `CREATE TABLE b (id INT PRIMARY KEY, w INT)`)
		for i := 0; i < 30; i++ {
			mustExec(t, db, fmt.Sprintf(`INSERT INTO a VALUES (%d, %d)`, i, i*2))
			if i%2 == 0 {
				mustExec(t, db, fmt.Sprintf(`INSERT INTO b VALUES (%d, %d)`, i, i*3))
			}
		}
		res := mustExec(t, db, `SELECT a.id, a.v, b.w FROM a, b WHERE a.id = b.id AND a.v > 10 ORDER BY a.id`)
		var sb strings.Builder
		for _, r := range res.Rows {
			fmt.Fprintf(&sb, "%v;", r)
		}
		if want == "" {
			want = sb.String()
			if len(res.Rows) == 0 {
				t.Fatal("empty join result")
			}
		} else if sb.String() != want {
			t.Fatalf("join strategy %s disagrees:\n%s\nvs\n%s", j, sb.String(), want)
		}
	}
}

func TestBaselineModeRuns(t *testing.T) {
	db := open(t, Config{Baseline: true})
	mustExec(t, db, `CREATE TABLE t (a INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	if s := db.Stats(); s.PRFEvals != 0 {
		t.Fatalf("baseline did PRF work: %+v", s)
	}
}

func TestAuthenticatedSession(t *testing.T) {
	db := open(t, Config{})
	mustExec(t, db, `CREATE TABLE t (a INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (7)`)
	key := []byte("shared-secret")
	db.ProvisionClient("c1", key)
	c := NewClient("c1", key)
	nonce := []byte("fresh")
	if err := c.Attest(db.Attest(nonce), db.Measurement(), nonce); err != nil {
		t.Fatal(err)
	}
	req := c.NewRequest(`SELECT a FROM t`)
	resp, err := db.Serve(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyResponse(req, resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 1 || resp.Rows[0][0].I != 7 {
		t.Fatalf("rows %v", resp.Rows)
	}
}

func TestRecoverFrom(t *testing.T) {
	src := open(t, Config{Seed: 2})
	mustExec(t, src, `CREATE TABLE t (a INT PRIMARY KEY, b TEXT, INDEX(b))`)
	for i := 0; i < 50; i++ {
		mustExec(t, src, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'v%d')`, i, i%5))
	}
	dst := open(t, Config{Seed: 3})
	if err := dst.RecoverFrom(src, 1000); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, dst, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].I != 50 {
		t.Fatalf("recovered %v rows", res.Rows[0][0])
	}
	// Secondary chain survives recovery.
	res = mustExec(t, dst, `SELECT COUNT(*) FROM t WHERE b = 'v3'`)
	if res.Rows[0][0].I != 10 {
		t.Fatalf("chain after recovery: %v", res.Rows)
	}
	if err := dst.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestExplainPublic(t *testing.T) {
	db := open(t, Config{})
	mustExec(t, db, `CREATE TABLE t (a INT PRIMARY KEY)`)
	out, err := db.Explain(`SELECT a FROM t WHERE a BETWEEN 1 AND 5`)
	if err != nil || !strings.Contains(out, "RangeScan") {
		t.Fatalf("explain %q, %v", out, err)
	}
}

func TestParseOnly(t *testing.T) {
	if err := ParseOnly(`SELECT 1 FROM t`); err != nil {
		t.Fatal(err)
	}
	if err := ParseOnly(`SELEC nope`); err == nil {
		t.Fatal("bad SQL accepted")
	}
}

func TestVerifierLifecycle(t *testing.T) {
	db := open(t, Config{})
	mustExec(t, db, `CREATE TABLE t (a INT PRIMARY KEY)`)
	if err := db.StartVerifier(5); err != nil {
		t.Fatal(err)
	}
	if err := db.StartVerifier(5); err == nil {
		t.Fatal("second StartVerifier did not return an error")
	}
	// The verifier is asynchronous: keep driving operations until it has
	// completed at least one epoch (bounded by a deadline).
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; db.Stats().Rotations == 0 && time.Now().Before(deadline); i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
		if i%50 == 49 {
			time.Sleep(time.Millisecond)
		}
	}
	db.StopVerifier()
	if db.Stats().Rotations == 0 {
		t.Fatal("no verification epochs completed")
	}
	if err := db.Alarm(); err != nil {
		t.Fatal(err)
	}
}

func TestErrorsSurfaceCleanly(t *testing.T) {
	db := open(t, Config{})
	cases := []string{
		`SELECT * FROM missing`,
		`CREATE TABLE`,
		`INSERT INTO missing VALUES (1)`,
		`UPDATE missing SET a = 1`,
		`DELETE FROM missing`,
	}
	for _, q := range cases {
		if _, err := db.Exec(q); err == nil {
			t.Fatalf("Exec(%q) succeeded", q)
		}
	}
	var errNil error
	if errors.Is(errNil, nil) { // keep errors import honest
		_ = errNil
	}
}
